"""Tests for the configuration dataclasses and design presets (Table 2)."""

import pytest

from repro.config.presets import DesignKind, all_designs, gemm_design_kinds, make_design
from repro.config.soc import (
    CacheConfig,
    DataType,
    DesignConfig,
    DmaConfig,
    IntegrationStyle,
    MatrixUnitConfig,
    RegisterFileConfig,
    SharedMemoryConfig,
    SoCConfig,
)


class TestDataType:
    def test_fp16_is_two_bytes(self):
        assert DataType.FP16.bytes == 2

    def test_fp32_is_four_bytes(self):
        assert DataType.FP32.bytes == 4


class TestRegisterFileConfig:
    def test_total_bytes(self):
        config = RegisterFileConfig()
        assert config.total_bytes == 16 * 1024

    def test_bytes_per_warp_matches_paper(self):
        """8 KB of FP registers across 8 warps gives the paper's 1 KiB slice."""
        config = RegisterFileConfig()
        assert config.bytes_per_warp(8) == 1024

    def test_bytes_per_warp_rejects_zero_warps(self):
        with pytest.raises(ValueError):
            RegisterFileConfig().bytes_per_warp(0)


class TestSharedMemoryConfig:
    def test_bank_width(self):
        config = SharedMemoryConfig(subbanks=8)
        assert config.bank_width_bytes == 32

    def test_peak_bandwidth(self):
        config = SharedMemoryConfig(banks=4, subbanks=8)
        assert config.peak_bytes_per_cycle == 128

    def test_scaled_banking_doubles_subbanks(self):
        config = SharedMemoryConfig(subbanks=8)
        assert config.scaled_banking(2).subbanks == 16


class TestCacheConfig:
    def test_sets_computation(self):
        config = CacheConfig(size_bytes=16 * 1024, line_bytes=64, ways=4)
        assert config.sets == 64


class TestMatrixUnitConfig:
    def test_volta_tile_macs(self):
        unit = make_design(DesignKind.VOLTA).matrix_unit
        assert unit.tile_macs == 8 * 8 * 16

    def test_hmma_steps_per_tile_volta(self):
        """1024 MACs at 32 MAC/cycle and 2 cycles/step -> 16 step instructions."""
        unit = make_design(DesignKind.VOLTA).matrix_unit
        assert unit.hmma_steps_per_tile == 16

    def test_operand_bytes_per_tile(self):
        unit = make_design(DesignKind.VOLTA).matrix_unit
        assert unit.operand_bytes_per_tile == 2 * (8 * 16 + 16 * 8)

    def test_accumulator_bytes_are_fp32(self):
        unit = make_design(DesignKind.VOLTA).matrix_unit
        assert unit.accumulator_bytes_per_tile == 4 * 8 * 8

    def test_tile_cycles_ideal(self):
        unit = make_design(DesignKind.HOPPER).matrix_unit
        assert unit.tile_cycles_ideal == unit.tile_macs / unit.macs_per_cycle


class TestPresets:
    def test_all_four_designs_exist(self):
        designs = all_designs()
        assert len(designs) == 4

    def test_design_names(self, all_design_configs):
        names = {design.name for design in all_design_configs.values()}
        assert names == {"Volta-style", "Ampere-style", "Hopper-style", "Virgo"}

    def test_equal_macs_per_cluster(self, all_design_configs):
        """All designs have 256 FP16 MACs per cluster (fair comparison)."""
        macs = {d.cluster.total_macs_per_cycle for d in all_design_configs.values()}
        assert macs == {256}

    def test_volta_has_no_dma(self, volta_design):
        assert not volta_design.has_dma
        assert not volta_design.cluster.dma.present

    def test_ampere_has_dma(self, ampere_design):
        assert ampere_design.has_dma

    def test_hopper_reads_operands_from_shared_memory(self, hopper_design):
        assert hopper_design.operands_from_shared_memory
        assert hopper_design.accumulator_in_register_file

    def test_virgo_is_fully_disaggregated(self, virgo_design):
        assert virgo_design.operands_from_shared_memory
        assert not virgo_design.accumulator_in_register_file

    def test_virgo_single_unit_per_cluster(self, virgo_design):
        assert virgo_design.cluster.matrix_units == 1

    def test_core_coupled_one_unit_per_core(self, volta_design, hopper_design):
        assert volta_design.cluster.matrix_units == volta_design.cluster.cores
        assert hopper_design.cluster.matrix_units == hopper_design.cluster.cores

    def test_tile_sizes_match_paper(self, all_design_configs):
        tiles = {
            kind: config.matrix_unit.tile_shape for kind, config in all_design_configs.items()
        }
        assert tiles[DesignKind.VOLTA] == (8, 8, 16)
        assert tiles[DesignKind.AMPERE] == (8, 8, 16)
        assert tiles[DesignKind.HOPPER] == (16, 16, 32)
        assert tiles[DesignKind.VIRGO] == (128, 64, 128)

    def test_hopper_has_four_cores(self, hopper_design):
        assert hopper_design.cluster.cores == 4

    def test_volta_has_eight_cores(self, volta_design):
        assert volta_design.cluster.cores == 8

    def test_virgo_accumulator_is_32kib(self, virgo_design):
        assert virgo_design.matrix_unit.accumulator_bytes == 32 * 1024

    def test_fp32_presets_halve_macs(self):
        fp32 = make_design(DesignKind.VOLTA, DataType.FP32)
        assert fp32.matrix_unit.macs_per_cycle == 16

    def test_virgo_fp32_systolic_array(self):
        fp32 = make_design(DesignKind.VIRGO, DataType.FP32)
        assert (fp32.matrix_unit.systolic_rows, fp32.matrix_unit.systolic_cols) == (8, 8)

    def test_gemm_design_kinds_order(self):
        assert gemm_design_kinds() == [
            DesignKind.VOLTA,
            DesignKind.AMPERE,
            DesignKind.HOPPER,
            DesignKind.VIRGO,
        ]

    def test_display_names(self):
        assert DesignKind.VIRGO.display_name == "Virgo"
        assert DesignKind.HOPPER.display_name == "Hopper-style"


class TestValidation:
    def test_validate_accepts_presets(self, all_design_configs):
        for design in all_design_configs.values():
            design.validate()

    def test_volta_with_dma_rejected(self, volta_design):
        from dataclasses import replace

        bad_cluster = replace(volta_design.soc.cluster, dma=DmaConfig(present=True))
        bad = replace(volta_design, soc=replace(volta_design.soc, cluster=bad_cluster))
        with pytest.raises(ValueError):
            bad.validate()

    def test_core_coupled_unit_count_mismatch_rejected(self, hopper_design):
        from dataclasses import replace

        bad_cluster = replace(hopper_design.soc.cluster, matrix_units=2)
        bad = replace(hopper_design, soc=replace(hopper_design.soc, cluster=bad_cluster))
        with pytest.raises(ValueError):
            bad.validate()


class TestSoCConfig:
    def test_clock_period(self):
        soc = SoCConfig(clock_mhz=400.0)
        assert soc.clock_period_ns == pytest.approx(2.5)

    def test_peak_matrix_tflops(self, virgo_design):
        # 256 MACs * 2 FLOP * 400 MHz = 0.2048 TFLOP/s
        assert virgo_design.soc.peak_matrix_tflops() == pytest.approx(0.2048)
