"""Tests for the persistent timing-cache snapshot (``repro.perf`` on disk).

The snapshot is an accelerator with strict hygiene: loading a warm snapshot
must change hit/miss accounting and wall clock only -- never results --
while missing, corrupt or stale-schema files degrade to a cold start
instead of erroring or (worse) being misread.
"""

import pickle

import pytest

from repro.config.presets import DesignKind
from repro.perf import (
    SCHEMA_VERSION,
    SNAPSHOT_FILENAME,
    SNAPSHOT_FORMAT_VERSION,
    TimingCache,
    load_snapshot,
    persistent_timing_cache,
    save_snapshot,
    snapshot_path,
    timing_cache,
)
from repro.runner import run_gemm
from repro.workloads import ModelSpec, RequestSpec, ServingTrace, run_serving
from repro.workloads.batch import BatchJob, run_batch

TINY_GPT = ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                     hidden=128, blocks=1, heads=4)


def steady_trace():
    return ServingTrace(
        name="persist-steady",
        requests=tuple(
            RequestSpec(request_id=f"p{index}", model=TINY_GPT, arrival_cycle=0,
                        prompt_len=16, decode_steps=4)
            for index in range(2)
        ),
        context_bucket=64,
    )


@pytest.fixture(autouse=True)
def fresh_cache():
    timing_cache().clear()
    yield
    timing_cache().clear()


class TestSnapshotRoundTrip:
    def test_save_then_load_restores_entries(self, tmp_path):
        run_gemm(DesignKind.VIRGO, 128)
        path = snapshot_path(tmp_path)
        assert save_snapshot(path) == len(timing_cache())

        fresh = TimingCache()
        assert load_snapshot(path, fresh) == len(timing_cache())
        # A seeded lookup against the restored cache is a hit.
        key = timing_cache().key(
            "gemm",
            run_gemm(DesignKind.VIRGO, 128).design,
            {"workload": run_gemm(DesignKind.VIRGO, 128).kernel.workload},
        )
        assert key in fresh

    def test_loaded_snapshot_changes_accounting_not_results(self, tmp_path):
        cold = run_gemm(DesignKind.VIRGO, 256).to_dict()
        save_snapshot(snapshot_path(tmp_path))

        timing_cache().clear()
        assert load_snapshot(snapshot_path(tmp_path)) > 0
        warm = run_gemm(DesignKind.VIRGO, 256)
        assert warm.to_dict() == cold
        assert timing_cache().hits == 1 and timing_cache().misses == 0

    def test_save_merges_with_existing_file(self, tmp_path):
        path = snapshot_path(tmp_path)
        run_gemm(DesignKind.VIRGO, 128)
        save_snapshot(path)

        timing_cache().clear()
        run_gemm(DesignKind.VIRGO, 256)
        save_snapshot(path)

        union = TimingCache()
        assert load_snapshot(path, union) == 2

    def test_missing_file_is_a_cold_start(self, tmp_path):
        assert load_snapshot(tmp_path / "absent.pkl") == 0

    def test_corrupt_file_is_a_cold_start(self, tmp_path):
        path = tmp_path / SNAPSHOT_FILENAME
        path.write_bytes(b"not a pickle")
        assert load_snapshot(path) == 0

    def test_wrong_payload_type_is_a_cold_start(self, tmp_path):
        path = tmp_path / SNAPSHOT_FILENAME
        path.write_bytes(pickle.dumps(["not", "a", "mapping"]))
        assert load_snapshot(path) == 0

    def test_unsupported_pickle_protocol_is_a_cold_start(self, tmp_path):
        """An opcode stream claiming a future protocol raises ValueError from
        pickle.load -- it must degrade to cold, not crash every startup."""
        path = tmp_path / SNAPSHOT_FILENAME
        data = bytearray(pickle.dumps({"format": 1}))
        assert data[0:1] == b"\x80"
        data[1] = 255  # bogus protocol byte
        path.write_bytes(bytes(data))
        assert load_snapshot(path) == 0

    def test_future_format_with_restructured_entries_is_orphaned(self, tmp_path):
        """A stamped container whose payload shape changed must be rejected
        by its stamp -- never fall through to the legacy branch and merge
        container keys as timing entries."""
        path = tmp_path / SNAPSHOT_FILENAME
        path.write_bytes(pickle.dumps({
            "format": SCHEMA_VERSION + 99,
            "schema": SCHEMA_VERSION + 99,
            "entries": ["restructured", "payload"],
        }))
        fresh = TimingCache()
        assert load_snapshot(path, fresh) == 0
        assert len(fresh) == 0
        assert "format" not in fresh

    def test_current_stamp_with_bad_entries_is_orphaned(self, tmp_path):
        path = tmp_path / SNAPSHOT_FILENAME
        path.write_bytes(pickle.dumps({
            "format": SNAPSHOT_FORMAT_VERSION,
            "schema": SCHEMA_VERSION,
            "entries": "garbage",
        }))
        fresh = TimingCache()
        assert load_snapshot(path, fresh) == 0
        assert len(fresh) == 0

    def test_stale_schema_file_is_orphaned(self, tmp_path):
        """Entries written under another schema version are skipped wholesale
        -- the on-disk mirror of the batch-cache schema-bump tests."""
        run_gemm(DesignKind.VIRGO, 128)
        path = snapshot_path(tmp_path)
        save_snapshot(path)

        snapshot = pickle.loads(path.read_bytes())
        snapshot["schema"] = SCHEMA_VERSION + 1
        path.write_bytes(pickle.dumps(snapshot))

        timing_cache().clear()
        assert load_snapshot(path) == 0
        assert len(timing_cache()) == 0


class TestPersistentContext:
    def test_first_run_flushes_second_run_starts_warm(self, tmp_path):
        with persistent_timing_cache(tmp_path) as path:
            cold = run_serving(steady_trace(), DesignKind.VIRGO)
            assert cold.timing_cache["misses"] > 0
        assert path.exists()

        # A "new process": empty cache, memo emptied by the clear.
        timing_cache().clear()
        with persistent_timing_cache(tmp_path):
            warm = run_serving(steady_trace(), DesignKind.VIRGO)
        assert warm.timing_cache["misses"] == 0
        # The iteration memo persists inside the snapshot, so the second
        # invocation replays every iteration instead of re-scheduling.
        assert warm.iteration_memo["misses"] == 0
        assert warm.iteration_memo["hits"] == warm.iteration_count
        assert warm.to_dict() == cold.to_dict()

    def test_memo_only_growth_still_flushes(self, tmp_path):
        """A run whose kernel entries are all warm from disk but which grows
        a derived memo (e.g. a snapshot written before the memo existed)
        must still flush -- otherwise that progress is lost every run."""
        path = snapshot_path(tmp_path)
        with persistent_timing_cache(tmp_path):
            run_serving(steady_trace(), DesignKind.VIRGO)
        snapshot = pickle.loads(path.read_bytes())
        snapshot.pop("namespaces", None)  # simulate an older writer
        path.write_bytes(pickle.dumps(snapshot))

        timing_cache().clear()
        with persistent_timing_cache(tmp_path):
            rebuilt = run_serving(steady_trace(), DesignKind.VIRGO)
        assert rebuilt.timing_cache["misses"] == 0  # kernels were warm
        assert rebuilt.iteration_memo["misses"] > 0  # memo was not

        timing_cache().clear()
        with persistent_timing_cache(tmp_path):
            warm = run_serving(steady_trace(), DesignKind.VIRGO)
        assert warm.iteration_memo["misses"] == 0

    def test_pure_hit_run_does_not_rewrite_the_file(self, tmp_path):
        with persistent_timing_cache(tmp_path) as path:
            run_gemm(DesignKind.VIRGO, 128)
        stamp = path.stat().st_mtime_ns

        timing_cache().clear()
        with persistent_timing_cache(tmp_path):
            run_gemm(DesignKind.VIRGO, 128)
        assert path.stat().st_mtime_ns == stamp

    def test_run_batch_persists_alongside_result_cache(self, tmp_path):
        job = BatchJob(model="gpt-decode", design="virgo")
        first = run_batch([job], cache_dir=tmp_path, max_workers=1)
        assert snapshot_path(tmp_path).exists()
        assert first.computed == 1

        # Fresh process simulation: result cache dropped, timing cache kept
        # on disk -- recomputing the job is all timing-cache hits.
        for entry in tmp_path.glob("*.json"):
            entry.unlink()
        timing_cache().clear()
        second = run_batch([job], cache_dir=tmp_path, max_workers=1)
        assert second.computed == 1
        assert timing_cache().misses == 0
        assert second.results() == first.results()
