"""Tests for the observability layer: metrics, phases, traces, reports.

The trace goldens pin the full Chrome trace-event JSON byte for byte --
the trace is a canonical serialization surface exactly like ``to_dict``
encodings, and viewer-visible drift (renamed tracks, shifted spans, lost
flow edges) should fail at review time.  Golden recorders run with
``capture_phases=False``: wall-clock spans are nondeterministic by nature.
The property test then covers what goldens cannot: for *every* trace shape,
spans stay inside the run's makespan and request lifecycles nest.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.trace_report import (
    format_trace_summary,
    trace_summary,
    validate_chrome_trace,
)
from repro.config.presets import DesignKind
from repro.kernels.flash_attention import simulate_flash_attention
from repro.kernels.gemm import simulate_gemm
from repro.obs import (
    MetricsRegistry,
    PhaseProfiler,
    TraceRecorder,
    occupancy_percent,
    phase,
    profiling,
    trace_recorder,
    tracing,
)
from repro.perf import timing_cache
from repro.sim.taskgraph import OperationGraph, Resource
from repro.workloads import (
    ModelSpec,
    RequestSpec,
    ServingTrace,
    run_model,
    run_serving,
)

GPT_TINY = ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                     hidden=128, blocks=1, heads=4, context_len=64)
GPT_PREFILL_TINY = ModelSpec(family="gpt", phase="prefill", batch=1, seq_len=32,
                             hidden=128, blocks=1, heads=4, context_len=64)
GQA_TINY = ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                     hidden=128, blocks=1, heads=4, kv_heads=1, context_len=64)
MOE_TINY = ModelSpec(family="moe", phase="decode", batch=2, seq_len=32,
                     hidden=128, blocks=1, heads=4, context_len=64,
                     experts=4, top_k=2)

#: Three requests with staggered arrivals: the trace golden shows queueing,
#: batched iterations and (via the in-run memo) the capture/replay path.
OBS_SERVING_TRACE = ServingTrace(
    name="obs-trace",
    requests=(
        RequestSpec(request_id="t0", model=GPT_TINY, arrival_cycle=0,
                    prompt_len=32, decode_steps=2),
        RequestSpec(request_id="t1", model=GQA_TINY, arrival_cycle=500,
                    prompt_len=48, decode_steps=3),
        RequestSpec(request_id="t2", model=MOE_TINY, arrival_cycle=1_000,
                    prompt_len=64, decode_steps=2),
    ),
    context_bucket=32,
)


# --------------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------------- #


class TestMetricsRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        metrics = MetricsRegistry()
        metrics.counter("requests").inc()
        metrics.counter("requests").inc(2)
        metrics.gauge("makespan").set(640)
        for value in (1, 2, 3):
            metrics.histogram("batch").observe(value)
        snapshot = metrics.snapshot()
        assert snapshot == {
            "batch": {"count": 3, "max": 3, "mean": 2.0, "min": 1, "total": 6},
            "makespan": 640,
            "requests": 3,
        }
        assert list(snapshot) == sorted(snapshot)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("n").inc(-1)

    def test_kind_mismatch_is_an_error(self):
        metrics = MetricsRegistry()
        metrics.counter("x")
        with pytest.raises(TypeError):
            metrics.gauge("x")

    def test_diagnostic_flag_mismatch_is_an_error(self):
        metrics = MetricsRegistry()
        metrics.counter("cache.hits", diagnostic=True)
        with pytest.raises(ValueError):
            metrics.counter("cache.hits")

    def test_diagnostic_metrics_partitioned_out_of_default_snapshot(self):
        metrics = MetricsRegistry()
        metrics.counter("stable").inc(1)
        metrics.counter("cache.hits", diagnostic=True).inc(7)
        assert metrics.snapshot() == {"stable": 1}
        assert metrics.snapshot(include_diagnostic=True) == {
            "cache.hits": 7,
            "stable": 1,
        }

    def test_occupancy_percent_matches_inline_formula(self):
        busy = {"simt": 100, "matrix": 750}
        span = 1_000
        expected = {
            resource: 100.0 * cycles / max(1, span)
            for resource, cycles in sorted(busy.items())
        }
        assert occupancy_percent(busy, span) == expected
        assert list(occupancy_percent(busy, span)) == ["matrix", "simt"]
        # Degenerate span: guarded, not a ZeroDivisionError.
        assert occupancy_percent({"matrix": 5}, 0) == {"matrix": 500.0}


# --------------------------------------------------------------------------- #
# Phase profiling
# --------------------------------------------------------------------------- #


class TestPhaseProfiling:
    def test_phase_records_into_active_profiler(self):
        with profiling() as profiler:
            with phase("lower", model="tiny"):
                pass
            with phase("lower", model="tiny"):
                pass
        totals = profiler.totals()
        assert totals["lower"]["calls"] == 2
        assert totals["lower"]["seconds"] >= 0.0
        assert profiler.records[0].args == {"model": "tiny"}
        assert "lower" in profiler.format_totals()

    def test_phase_is_inert_without_profiler_or_recorder(self):
        profiler = PhaseProfiler()
        with phase("lower"):
            pass
        assert profiler.records == []
        assert profiler.format_totals() == "no phases recorded"

    def test_profiling_contexts_nest_and_restore(self):
        with profiling() as outer:
            with profiling() as inner:
                with phase("p"):
                    pass
            with phase("q"):
                pass
        assert [record.name for record in inner.records] == ["p"]
        assert [record.name for record in outer.records] == ["q"]

    def test_model_run_hits_the_expected_phase_sites(self):
        with profiling() as profiler:
            run_model(GPT_TINY, DesignKind.VIRGO)
        names = {record.name for record in profiler.records}
        assert {"lower", "kernel_sim", "list_schedule"} <= names

    def test_serving_run_hits_the_expected_phase_sites(self):
        with profiling() as profiler:
            run_serving(OBS_SERVING_TRACE, DesignKind.VIRGO)
        names = {record.name for record in profiler.records}
        assert {"serving.run", "serving.iteration", "merge"} <= names


# --------------------------------------------------------------------------- #
# Trace recorder mechanics
# --------------------------------------------------------------------------- #


class TestTraceRecorder:
    def test_tracing_activates_and_restores(self):
        assert trace_recorder() is None
        with tracing() as recorder:
            assert trace_recorder() is recorder
            with tracing() as inner:
                assert trace_recorder() is inner
            assert trace_recorder() is recorder
        assert trace_recorder() is None

    def test_time_offset_shifts_and_nests(self):
        recorder = TraceRecorder()
        with recorder.time_offset(100):
            recorder.add_span("a", process="units", track="matrix",
                              start=5, duration=10)
            with recorder.time_offset(1_000):
                recorder.add_span("b", process="units", track="matrix",
                                  start=5, duration=10)
        recorder.add_span("c", process="units", track="matrix",
                          start=5, duration=10)
        assert [span.start for span in recorder.spans] == [105, 1105, 5]

    def test_capture_replay_round_trip(self):
        recorder = TraceRecorder()
        recorder.add_span("before", process="units", track="matrix",
                          start=0, duration=1)
        marker = recorder.mark()
        a = recorder.add_span("k0", process="units", track="matrix",
                              start=200, duration=10)
        b = recorder.add_span("k1", process="units", track="simt",
                              start=210, duration=5)
        recorder.add_flow(a, b)
        captured = recorder.capture(marker, base=200)
        assert [span.start for span in captured.spans] == [0, 10]
        assert captured.flows == [(0, 1)]

        recorder.replay(captured, base=900)
        assert [span.start for span in recorder.spans[-2:]] == [900, 910]
        assert recorder.flows[-1] == (3, 4)

    def test_record_schedule_spans_and_flows(self):
        graph = OperationGraph()
        graph.add_resource(Resource("matrix"))
        graph.add_resource(Resource("simt"))
        graph.add_operation("g0", "matrix", 100, kind="gemm")
        graph.add_operation("g1", "matrix", 50, deps=["g0"], kind="gemm")
        graph.add_operation("e0", "simt", 30, deps=["g0"], kind="simt")
        placed = graph.schedule()

        recorder = TraceRecorder()
        first, last = recorder.record_schedule(
            placed, extra_args={"g0": {"layer": "L0"}}
        )
        assert (first, last) == (0, 3)
        by_name = {span.name: span for span in recorder.spans}
        assert by_name["g0"].args == {"layer": "L0"}
        assert by_name["g1"].args == {"deps": ["g0"]}
        assert by_name["g0"].category == "gemm"
        assert by_name["e0"].track == "simt"
        assert len(recorder.flows) == 2
        # Span intervals mirror the placement exactly.
        for name, item in placed.scheduled.items():
            assert by_name[name].start == item.start
            assert by_name[name].duration == item.end - item.start

    def test_chrome_trace_structure(self):
        recorder = TraceRecorder(label="unit-test")
        a = recorder.add_span("k0", process="units", track="matrix",
                              start=0, duration=10, category="gemm")
        b = recorder.add_span("k1", process="units", track="simt",
                              start=10, duration=5, category="simt")
        recorder.add_flow(a, b)
        trace = recorder.chrome_trace()

        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["generator"] == "unit-test"
        events = trace["traceEvents"]
        metadata = [event for event in events if event["ph"] == "M"]
        assert {event["name"] for event in metadata} == {
            "process_name", "process_sort_index", "thread_name"
        }
        starts = [event for event in events if event["ph"] == "s"]
        finishes = [event for event in events if event["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"]
        assert starts[0]["ts"] == 10  # source span end
        assert finishes[0]["ts"] == 10  # target span start

    def test_write_emits_canonical_json(self, tmp_path):
        recorder = TraceRecorder()
        recorder.add_span("k0", process="units", track="matrix",
                          start=0, duration=1)
        path = recorder.write(tmp_path / "trace.json")
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert json.loads(text) == recorder.chrome_trace()


# --------------------------------------------------------------------------- #
# End-to-end trace goldens
# --------------------------------------------------------------------------- #


def _record_model_trace(spec) -> TraceRecorder:
    timing_cache().clear()
    recorder = TraceRecorder(capture_phases=False)
    with tracing(recorder):
        run_model(spec, DesignKind.VIRGO)
    return recorder


def _record_serving_trace() -> "tuple":
    # Clearing the timing cache also empties the iteration-memo namespace,
    # so the capture/replay decisions (and therefore the span stream) are
    # identical no matter which tests ran earlier in the process.
    timing_cache().clear()
    recorder = TraceRecorder(capture_phases=False)
    with tracing(recorder):
        result = run_serving(OBS_SERVING_TRACE, DesignKind.VIRGO)
    return recorder, result


def test_model_trace_golden(golden):
    recorder = _record_model_trace(GPT_TINY)
    golden("trace_model_gpt_decode_tiny", recorder.chrome_trace())


def test_serving_trace_golden(golden):
    recorder, _ = _record_serving_trace()
    golden("trace_serving_three_requests", recorder.chrome_trace())


def test_model_trace_annotates_compression():
    """Compressed steady-state kernels stay single spans, annotated instead
    of expanded: the trace must carry ``compressed`` plus operation counts."""
    recorder = _record_model_trace(GPT_PREFILL_TINY)
    gemm_flags = {
        (span.args or {}).get("compressed")
        for span in recorder.spans
        if span.category == "gemm"
    }
    assert gemm_flags == {True, False}
    flash = [span for span in recorder.spans if span.category == "flash"]
    assert flash, "prefill attention should lower to a fused flash kernel"
    for span in flash:
        assert span.args["compressed"] is True
        assert span.args["executed_operations"] < span.args["operations"]


def test_serving_trace_has_request_lifecycles_and_unit_spans():
    recorder, result = _record_serving_trace()
    categories = {}
    for span in recorder.spans:
        categories.setdefault(span.category, []).append(span)
    assert len(categories["queue"]) == len(OBS_SERVING_TRACE.requests)
    assert len(categories["decode"]) == len(OBS_SERVING_TRACE.requests)
    assert len(categories["iteration"]) == result.iteration_count
    assert sum(len(categories.get(kind, [])) for kind in ("gemm", "simt", "epoch")) > 0
    step_spans = categories["decode_step"]
    assert len(step_spans) == result.decode_steps_executed
    assert all(
        span.args["memo"] in ("miss", "replay")
        for span in categories["iteration"]
    )


def test_warm_memo_falls_back_to_epoch_spans():
    """A composition memoized *before* tracing started has no captured shape;
    its iterations must still appear, as synthesized per-unit epoch spans."""
    timing_cache().clear()
    run_serving(OBS_SERVING_TRACE, DesignKind.VIRGO)  # warm the memo untraced
    recorder = TraceRecorder(capture_phases=False)
    with tracing(recorder):
        result = run_serving(OBS_SERVING_TRACE, DesignKind.VIRGO)
    epochs = [span for span in recorder.spans if span.category == "epoch"]
    assert epochs
    assert all(span.name == "epoch (memoized)" for span in epochs)
    assert all(span.process == "units" for span in epochs)
    assert all(
        span.start + span.duration <= result.total_cycles for span in epochs
    )
    timing_cache().clear()


def test_full_expansion_and_compressed_kernel_paths_agree():
    """The trace annotations come from ``schedule_stats``; both scheduler
    paths must account for every operation and time identically."""
    # 256^3 is past the steady-state threshold (128^3 executes fully).
    compressed = simulate_gemm(DesignKind.VIRGO, 256)
    expanded = simulate_gemm(DesignKind.VIRGO, 256, full_expansion=True)
    assert expanded.total_cycles == compressed.total_cycles
    c_stats, e_stats = compressed.schedule_stats, expanded.schedule_stats
    assert c_stats["operation_count"] == e_stats["operation_count"]
    assert e_stats["extrapolated_operations"] == 0
    assert e_stats["executed_operations"] == e_stats["operation_count"]
    assert c_stats["extrapolated_operations"] > 0
    assert (
        c_stats["executed_operations"] + c_stats["extrapolated_operations"]
        == c_stats["operation_count"]
    )

    flash_compressed = simulate_flash_attention(DesignKind.VIRGO)
    flash_expanded = simulate_flash_attention(DesignKind.VIRGO, full_expansion=True)
    assert flash_expanded.total_cycles == flash_compressed.total_cycles
    assert flash_expanded.schedule_stats["extrapolated_operations"] == 0
    assert flash_compressed.schedule_stats["extrapolated_operations"] > 0


# --------------------------------------------------------------------------- #
# Result metrics
# --------------------------------------------------------------------------- #


def test_model_result_metrics_snapshot_is_cache_state_independent():
    timing_cache().clear()
    cold = run_model(GPT_TINY, DesignKind.VIRGO)
    warm = run_model(GPT_TINY, DesignKind.VIRGO)
    assert cold.to_dict() == warm.to_dict()
    cold_diag = cold.metrics.snapshot(include_diagnostic=True)
    warm_diag = warm.metrics.snapshot(include_diagnostic=True)
    assert cold_diag["timing_cache.misses"] > 0
    assert warm_diag["timing_cache.misses"] == 0
    assert cold.metrics.snapshot() == warm.metrics.snapshot()


def test_serving_result_metrics_match_result_fields():
    timing_cache().clear()
    result = run_serving(OBS_SERVING_TRACE, DesignKind.VIRGO)
    snapshot = result.metrics.snapshot()
    assert snapshot["serving.requests"] == len(result.requests)
    assert snapshot["serving.iterations"] == result.iteration_count
    assert snapshot["serving.decode_steps"] == result.decode_steps_executed
    assert snapshot["serving.makespan_cycles"] == result.total_cycles
    assert snapshot["serving.batch"]["count"] == result.iteration_count
    for resource, busy in result.resource_busy.items():
        assert snapshot[f"unit.busy_cycles.{resource}"] == busy
    assert "iteration_memo.hits" not in snapshot
    assert "iteration_memo.hits" in result.metrics.snapshot(include_diagnostic=True)


# --------------------------------------------------------------------------- #
# Trace validation and reporting
# --------------------------------------------------------------------------- #


class TestTraceReport:
    def test_validate_accepts_recorded_trace(self):
        recorder, _ = _record_serving_trace()
        assert validate_chrome_trace(recorder.chrome_trace()) == []

    def test_validate_rejects_malformed_traces(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) == ["trace has no 'traceEvents' list"]
        errors = validate_chrome_trace(
            {
                "traceEvents": [
                    "not-an-event",
                    {"ph": "Q", "pid": 1, "tid": 1},
                    {"ph": "X", "pid": 1, "tid": 1, "name": "", "ts": 0, "dur": 1},
                    {"ph": "X", "pid": 1, "tid": 1, "name": "k", "ts": -5, "dur": 1},
                    {"ph": "s", "pid": 1, "tid": 1, "ts": 0},
                ]
            }
        )
        assert len(errors) == 5
        assert "unknown phase" in errors[1]
        assert "without a name" in errors[2]
        assert "bad 'ts'" in errors[3]
        assert "without an id" in errors[4]

    def test_summary_of_a_serving_trace(self):
        recorder, result = _record_serving_trace()
        summary = trace_summary(recorder.chrome_trace(), top=5)
        assert summary["makespan_ts"] == result.total_cycles
        assert summary["spans"] + summary["profile_spans"] == len(recorder.spans)
        assert len(summary["top_spans"]) == 5
        durations = [span["dur"] for span in summary["top_spans"]]
        assert durations == sorted(durations, reverse=True)
        occupancy = summary["unit_occupancy"]
        assert set(occupancy) == set(result.resource_busy)
        for resource, entry in occupancy.items():
            assert entry["busy"] == result.resource_busy[resource]
        assert len(summary["iterations"]) == result.iteration_count
        assert summary["iterations"][0]["args"]["batch"] >= 1

        text = format_trace_summary(summary, title="serving")
        assert "serving" in text
        assert "unit occupancy timeline" in text
        assert "iteration 0" in text


# --------------------------------------------------------------------------- #
# Property: spans stay inside the run and request lifecycles nest
# --------------------------------------------------------------------------- #

MODELS = (GPT_TINY, GQA_TINY, MOE_TINY)


@st.composite
def obs_traces(draw):
    count = draw(st.integers(1, 4))
    requests = []
    for index in range(count):
        requests.append(
            RequestSpec(
                request_id=f"p{index}",
                model=MODELS[draw(st.integers(0, len(MODELS) - 1))],
                arrival_cycle=draw(st.integers(0, 200_000)),
                prompt_len=draw(st.integers(1, 96)),
                decode_steps=draw(st.integers(1, 3)),
            )
        )
    # Traces must be sorted by (arrival, id) since construction validates it.
    requests.sort(key=lambda r: (r.arrival_cycle, r.request_id))
    return ServingTrace(name="obs-hypothesis", requests=tuple(requests),
                        context_bucket=32)


@settings(deadline=None, max_examples=10)
@given(trace=obs_traces())
def test_trace_spans_bounded_and_nested(trace):
    recorder = TraceRecorder(capture_phases=False)
    with tracing(recorder):
        # The exact loop is the path that emits one span per decode step;
        # under epoch compression extrapolated stretches deliberately stay
        # single annotated spans (pinned by tests/test_epochs.py), so this
        # nesting contract is the exact path's.
        result = run_serving(trace, DesignKind.VIRGO, epoch_compression=False)

    by_request = {}
    for span in recorder.spans:
        assert span.start >= 0
        assert span.duration >= 0
        assert span.start + span.duration <= result.total_cycles
        if span.process == "requests":
            by_request.setdefault(span.track, {})\
                .setdefault(span.category, []).append(span)

    arrivals = {request.request_id: request.arrival_cycle
                for request in trace.requests}
    assert set(by_request) == set(arrivals)
    for request_id, spans in by_request.items():
        (queue,) = spans["queue"]
        (decode,) = spans["decode"]
        assert queue.start == arrivals[request_id]
        # The decode span begins the cycle the queue span ends: admission.
        assert decode.start == queue.start + queue.duration
        for step in spans["decode_step"]:
            assert step.start >= decode.start
            assert step.start + step.duration <= decode.start + decode.duration
