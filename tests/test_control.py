"""Tests for the serving control plane: SLO classes, policies, dispositions.

Covers the policy layer in isolation (pure decision functions over stub
queue/batch state), the scheduler integration (goodput, dispositions,
preemption accounting, memo byte-identity under preemption), and the CLI
surface (--policy / --kv-budget flags, friendly errors).  The chaos-side
coverage (fault injection, graceful degradation) lives in
``tests/test_faults.py``.
"""

import json
from dataclasses import dataclass, replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from differential import assert_byte_identical

from repro.__main__ import main
from repro.config.presets import DesignKind
from repro.config.soc import DataType
from repro.workloads import (
    DISPOSITIONS,
    FcfsPolicy,
    KvBudgetPolicy,
    ModelSpec,
    PolicyContext,
    PreemptiveSloPolicy,
    RequestSpec,
    ServingScheduler,
    ServingTrace,
    SloClass,
    policy_names,
    request_kv_bytes,
    resolve_policy,
    resolve_slo,
    run_serving,
    slo_trace,
)
from repro.workloads.control import SLO_CLASSES, evaluate_disposition

TINY_GPT = ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                     hidden=128, blocks=1, heads=4)

INTERACTIVE = SLO_CLASSES["interactive"]
STANDARD = SLO_CLASSES["standard"]
BATCH = SLO_CLASSES["batch"]


def request(rid, arrival=0, slo=None, prompt_len=32, decode_steps=2):
    return RequestSpec(
        request_id=rid,
        model=TINY_GPT,
        arrival_cycle=arrival,
        prompt_len=prompt_len,
        decode_steps=decode_steps,
        slo=slo,
    )


def trace_of(*requests, bucket=32):
    ordered = tuple(sorted(requests, key=lambda r: (r.arrival_cycle, r.request_id)))
    return ServingTrace(name="control", requests=ordered, context_bucket=bucket)


@dataclass
class Queued:
    """Stub of the scheduler's queued-entry state the policy hooks see."""

    request: RequestSpec
    enqueued_cycle: int = 0
    steps_done: int = 0


@dataclass
class Active:
    """Stub of the scheduler's in-flight state the policy hooks see."""

    request: RequestSpec
    resident_since: int = 0
    steps_done: int = 0


def context_for(trace, kv_budget_bytes):
    design = ServingScheduler(DesignKind.VIRGO).design
    return PolicyContext(
        design=design,
        dtype=DataType.FP16,
        trace=trace,
        kv_budget_bytes=kv_budget_bytes,
    )


#: KV bytes of one TINY_GPT request at the 32-token bucket: the unit every
#: budget below is expressed in, so the tests read in "requests", not bytes.
UNIT = request_kv_bytes(TINY_GPT, 32, DataType.FP16)


class TestSloClasses:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty name"):
            SloClass(name="")
        with pytest.raises(ValueError, match="ttft_target_cycles"):
            SloClass(name="x", ttft_target_cycles=0)
        with pytest.raises(ValueError, match="queue_deadline_cycles"):
            SloClass(name="x", queue_deadline_cycles=-5)

    def test_resolve_by_name_and_passthrough(self):
        assert resolve_slo("interactive") is INTERACTIVE
        custom = SloClass(name="custom", priority=9)
        assert resolve_slo(custom) is custom

    def test_unknown_class_lists_choices(self):
        with pytest.raises(KeyError, match="batch, interactive, standard"):
            resolve_slo("platinum")

    def test_builtin_classes_order_by_priority(self):
        assert INTERACTIVE.priority > STANDARD.priority > BATCH.priority
        assert BATCH.ttft_target_cycles is None
        assert BATCH.queue_deadline_cycles is None

    def test_to_dict_round_trips_fields(self):
        encoded = INTERACTIVE.to_dict()
        assert encoded["name"] == "interactive"
        assert encoded["priority"] == 2
        assert encoded["ttft_target_cycles"] == INTERACTIVE.ttft_target_cycles


class TestKvBytes:
    def test_request_kv_bytes_arithmetic(self):
        # 2 (K and V) * blocks * kv_heads * head_dim * context * dtype bytes.
        assert request_kv_bytes(TINY_GPT, 32, DataType.FP16) == 2 * 1 * 4 * 32 * 32 * 2

    def test_gqa_shrinks_kv_footprint(self):
        gqa = replace(TINY_GPT, kv_heads=1)
        assert request_kv_bytes(gqa, 32, DataType.FP16) == UNIT // 4


class TestResolvePolicy:
    def test_default_is_fcfs(self):
        assert resolve_policy(None).name == "fcfs"
        assert isinstance(resolve_policy("fcfs"), FcfsPolicy)

    def test_names_cover_registry(self):
        assert policy_names() == ["fcfs", "kv-budget", "preemptive-slo"]

    def test_unknown_policy_lists_choices(self):
        with pytest.raises(KeyError, match="fcfs, kv-budget, preemptive-slo"):
            resolve_policy("bogus")

    def test_fcfs_rejects_budget(self):
        with pytest.raises(ValueError, match="fcfs policy has no KV budget"):
            resolve_policy("fcfs", kv_budget=1024)

    def test_instance_passthrough_rejects_budget_alongside(self):
        policy = KvBudgetPolicy(budget_bytes=UNIT)
        assert resolve_policy(policy) is policy
        with pytest.raises(ValueError, match="policy constructor"):
            resolve_policy(policy, kv_budget=UNIT)

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="positive budget"):
            KvBudgetPolicy(budget_bytes=0)


class TestKvBudgetPolicy:
    def test_admit_stops_at_budget(self):
        trace = trace_of(request("a"), request("b"), request("c"))
        ctx = context_for(trace, kv_budget_bytes=2 * UNIT)
        queued = [Queued(request(rid)) for rid in ("a", "b", "c")]
        admitted = KvBudgetPolicy().admit(queued, [], now=0, ctx=ctx)
        assert [entry.request.request_id for entry in admitted] == ["a", "b"]

    def test_admit_counts_resident_kv(self):
        trace = trace_of(request("a"), request("b"))
        ctx = context_for(trace, kv_budget_bytes=2 * UNIT)
        active = [Active(request("a"))]
        admitted = KvBudgetPolicy().admit([Queued(request("b"))], active, 0, ctx)
        assert len(admitted) == 1
        admitted = KvBudgetPolicy(budget_bytes=UNIT).admit(
            [Queued(request("b"))], active, 0, ctx
        )
        assert admitted == []

    def test_admit_prefers_priority_over_queue_age(self):
        # The older low-priority waiter loses the single slot to the younger
        # high-priority one: admission order is (priority desc, age, id).
        trace = trace_of(
            request("old-batch", slo=BATCH), request("new-vip", slo=INTERACTIVE)
        )
        ctx = context_for(trace, kv_budget_bytes=UNIT)
        queued = [
            Queued(request("old-batch", slo=BATCH), enqueued_cycle=0),
            Queued(request("new-vip", slo=INTERACTIVE), enqueued_cycle=100),
        ]
        admitted = KvBudgetPolicy().admit(queued, [], 200, ctx)
        assert [entry.request.request_id for entry in admitted] == ["new-vip"]

    def test_shed_expired_deadlines_only(self):
        trace = trace_of(request("vip", slo=INTERACTIVE), request("bulk", slo=BATCH))
        ctx = context_for(trace, kv_budget_bytes=UNIT)
        deadline = INTERACTIVE.queue_deadline_cycles
        queued = [
            Queued(request("vip", slo=INTERACTIVE), enqueued_cycle=0),
            Queued(request("bulk", slo=BATCH), enqueued_cycle=0),
        ]
        policy = KvBudgetPolicy()
        assert policy.shed(queued, now=deadline, ctx=ctx) == []
        shed = policy.shed(queued, now=deadline + 1, ctx=ctx)
        # The batch-class request has no deadline and is never shed.
        assert [entry.request.request_id for entry in shed] == ["vip"]


class TestPreemptiveSloPolicy:
    def test_evicts_longest_resident_lower_priority(self):
        trace = trace_of(
            request("bulk0", slo=BATCH),
            request("bulk1", slo=BATCH),
            request("vip", slo=INTERACTIVE, arrival=10),
        )
        ctx = context_for(trace, kv_budget_bytes=2 * UNIT)
        active = [
            Active(request("bulk1", slo=BATCH), resident_since=5),
            Active(request("bulk0", slo=BATCH), resident_since=0),
        ]
        queued = [Queued(request("vip", slo=INTERACTIVE), enqueued_cycle=10)]
        evicted = PreemptiveSloPolicy().evict(active, queued, now=10, ctx=ctx)
        assert [state.request.request_id for state in evicted] == ["bulk0"]

    def test_never_evicts_equal_or_higher_priority(self):
        trace = trace_of(
            request("std", slo=STANDARD), request("vip", slo=INTERACTIVE, arrival=10)
        )
        ctx = context_for(trace, kv_budget_bytes=UNIT)
        active = [Active(request("vip", slo=INTERACTIVE))]
        queued = [Queued(request("std", slo=STANDARD), enqueued_cycle=10)]
        assert PreemptiveSloPolicy().evict(active, queued, 10, ctx) == []

    def test_no_waiters_no_evictions(self):
        trace = trace_of(request("a", slo=BATCH))
        ctx = context_for(trace, kv_budget_bytes=UNIT)
        assert PreemptiveSloPolicy().evict([Active(request("a"))], [], 0, ctx) == []


class TestEvaluateDisposition:
    def test_no_slo_is_met(self):
        assert evaluate_disposition(request("r"), 10**9, 10**9) == "met"

    def test_ttft_target(self):
        vip = request("r", slo=INTERACTIVE)
        target = INTERACTIVE.ttft_target_cycles
        assert evaluate_disposition(vip, target, target + 1) == "met"
        assert evaluate_disposition(vip, target + 1, target + 2) == "violated"

    def test_tpot_target(self):
        slo = SloClass(name="tpot-only", tpot_target_cycles=100)
        r = request("r", slo=slo, decode_steps=3)
        # latency - ttft spread over decode_steps - 1 subsequent tokens.
        assert evaluate_disposition(r, 50, 50 + 200) == "met"
        assert evaluate_disposition(r, 50, 50 + 201) == "violated"

    def test_single_step_ignores_tpot(self):
        slo = SloClass(name="tpot-only", tpot_target_cycles=1)
        assert evaluate_disposition(request("r", slo=slo, decode_steps=1), 5, 5) == "met"


class TestSchedulerIntegration:
    def test_fcfs_run_has_inactive_control_plane(self):
        result = run_serving(trace_of(request("a"), request("b")))
        assert result.control_active is False
        encoded = result.to_dict()
        assert "policy" not in encoded and "goodput" not in encoded
        for req in encoded["requests"]:
            assert "disposition" not in req

    def test_slo_trace_activates_control_plane(self):
        result = run_serving(trace_of(request("a", slo=BATCH)))
        assert result.control_active is True
        assert result.policy == "fcfs"
        assert result.goodput == 1.0
        assert result.to_dict()["dispositions"] == {
            "met": 1, "violated": 0, "shed": 0, "timed_out": 0
        }

    def test_slo_zoo_traces_registered(self):
        bursty = slo_trace("x", "bursty-gpt")
        assert all(r.slo is not None for r in bursty.requests)
        classes = {r.slo.name for r in bursty.requests}
        assert classes == {"interactive", "standard", "batch"}

    def test_preemption_under_tight_budget(self):
        trace = trace_of(
            request("bulk0", slo=BATCH, decode_steps=4),
            request("bulk1", slo=BATCH, decode_steps=4),
            request("vip", slo=INTERACTIVE, arrival=1, decode_steps=2),
        )
        result = run_serving(trace, policy="preemptive-slo", kv_budget=2 * UNIT)
        assert result.preemption_count >= 1
        by_id = {r.request_id: r for r in result.requests}
        assert by_id["vip"].disposition in ("met", "violated")
        # Preempted requests resume and still finish: nothing is lost.
        assert sum(result.dispositions.values()) == len(trace.requests)
        assert all(r.preemptions >= 0 for r in result.requests)

    def test_memo_off_byte_identical_under_preemption(self):
        trace = trace_of(
            request("bulk0", slo=BATCH, decode_steps=4),
            request("bulk1", slo=BATCH, decode_steps=4),
            request("vip", slo=INTERACTIVE, arrival=1, decode_steps=2),
        )
        kwargs = dict(policy="preemptive-slo", kv_budget=2 * UNIT)
        warm = run_serving(trace, iteration_memo=True, **kwargs)
        cold = run_serving(trace, iteration_memo=False, **kwargs)
        assert warm.preemption_count >= 1
        assert_byte_identical(warm, cold, context="memo on vs off under preemption")


#: Hypothesis strategy: small SLO-annotated traces over one tiny model.
@st.composite
def slo_traces(draw):
    count = draw(st.integers(1, 5))
    classes = (INTERACTIVE, STANDARD, BATCH, None)
    requests = []
    for index in range(count):
        # The first request always carries a class: an all-None draw under
        # fcfs leaves the control plane inactive, which is a different
        # regime (pinned elsewhere) than the disposition partition here.
        upper = len(classes) - (2 if index == 0 else 1)
        requests.append(
            RequestSpec(
                request_id=f"p{index}",
                model=TINY_GPT,
                arrival_cycle=draw(st.integers(0, 400_000)),
                prompt_len=draw(st.integers(1, 96)),
                decode_steps=draw(st.integers(1, 3)),
                slo=classes[draw(st.integers(0, upper))],
            )
        )
    requests.sort(key=lambda r: (r.arrival_cycle, r.request_id))
    return ServingTrace(name="prop", requests=tuple(requests), context_bucket=32)


class TestDispositionPartition:
    @settings(deadline=None, max_examples=10)
    @given(trace=slo_traces(), policy=st.sampled_from(policy_names()))
    def test_every_request_in_exactly_one_disposition(self, trace, policy):
        kv_budget = 2 * UNIT if policy != "fcfs" else None
        result = run_serving(trace, policy=policy, kv_budget=kv_budget)
        assert result.control_active is True
        assert set(result.dispositions) == set(DISPOSITIONS)
        assert sum(result.dispositions.values()) == len(trace.requests)
        assert len(result.requests) == len(trace.requests)
        for req in result.requests:
            assert req.disposition in DISPOSITIONS
        counted = {name: 0 for name in DISPOSITIONS}
        for req in result.requests:
            counted[req.disposition] += 1
        assert counted == dict(result.dispositions)
        assert result.goodput == counted["met"] / len(trace.requests)


class TestControlCli:
    def test_policy_flag_renders_goodput_and_dispositions(self, capsys):
        assert main([
            "serve", "--trace", "bursty-slo", "--policy", "kv-budget",
            "--kv-budget", "300000",
        ]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "disposition" in out

    def test_json_report_carries_control_keys(self, capsys):
        assert main([
            "serve", "--trace", "bursty-slo", "--policy", "preemptive-slo",
            "--kv-budget", "300000", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        latency = report["latency_report"]
        assert latency["policy"] == "preemptive-slo"
        assert set(latency["dispositions"]) == set(DISPOSITIONS)
        assert 0.0 <= latency["goodput"] <= 1.0

    def test_unknown_policy_exits_with_choices(self):
        with pytest.raises(SystemExit, match="kv-budget"):
            main(["serve", "--trace", "bursty-slo", "--policy", "bogus"])

    def test_fcfs_with_budget_exits_friendly(self):
        with pytest.raises(SystemExit, match="no KV budget"):
            main(["serve", "--trace", "bursty-slo", "--kv-budget", "1024"])

    def test_default_serve_output_unchanged(self, capsys):
        # No policy, no SLOs, no faults: the historical table layout, with
        # no disposition column and no goodput line.
        assert main(["serve", "--trace", "uniform-moe"]) == 0
        out = capsys.readouterr().out
        assert "goodput" not in out
        assert "disposition" not in out
