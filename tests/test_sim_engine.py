"""Edge-case coverage for the discrete-event engine and the taskgraph scheduler.

Complements ``tests/test_sim.py`` with the corners the kernel models lean on:
``Event.cancel()`` semantics end to end through the simulator, deterministic
same-cycle ordering by sequence number, and diamond-shaped dependency
patterns in the operation-graph scheduler.
"""

import pytest

from repro.sim.engine import EventQueue, Simulator
from repro.sim.resources import Resource
from repro.sim.taskgraph import OperationGraph


class TestEventCancel:
    def test_cancelled_event_never_runs(self):
        simulator = Simulator()
        fired = []
        event = simulator.schedule(5, lambda: fired.append("cancelled"))
        simulator.schedule(10, lambda: fired.append("kept"))
        event.cancel()
        simulator.run()
        assert fired == ["kept"]

    def test_cancel_mid_run_from_earlier_callback(self):
        """A callback may cancel a later event that is already enqueued."""
        simulator = Simulator()
        fired = []
        victim = simulator.schedule(20, lambda: fired.append("victim"))
        simulator.schedule(10, victim.cancel)
        simulator.run()
        assert fired == []
        assert simulator.now == 10  # time never advances to the cancelled event

    def test_cancel_same_cycle_later_event(self):
        """Cancelling a same-cycle event that is behind in sequence order works."""
        simulator = Simulator()
        fired = []
        first_holder = {}

        def canceller():
            fired.append("canceller")
            first_holder["victim"].cancel()

        simulator.schedule(5, canceller)
        first_holder["victim"] = simulator.schedule(5, lambda: fired.append("victim"))
        simulator.run()
        assert fired == ["canceller"]

    def test_cancelled_events_not_counted_as_processed(self):
        simulator = Simulator()
        event = simulator.schedule(1, lambda: None)
        simulator.schedule(2, lambda: None)
        event.cancel()
        simulator.run()
        assert simulator.events_processed == 1

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        event.cancel()
        event.cancel()
        assert queue.pop() is None

    def test_peek_time_skips_cancelled_head(self):
        queue = EventQueue()
        head = queue.push(1, lambda: None)
        queue.push(7, lambda: None)
        head.cancel()
        assert queue.peek_time() == 7

    def test_peek_time_empty_after_all_cancelled(self):
        queue = EventQueue()
        only = queue.push(3, lambda: None)
        only.cancel()
        assert queue.peek_time() is None
        assert not queue

    def test_run_until_with_cancelled_tail(self):
        """``run(until=...)`` still lands on ``until`` when the tail is cancelled."""
        simulator = Simulator()
        tail = simulator.schedule(100, lambda: None)
        tail.cancel()
        simulator.run(until=50)
        assert simulator.now == 50


class TestSameCycleOrdering:
    def test_sequence_breaks_time_ties_fifo(self):
        simulator = Simulator()
        order = []
        for index in range(5):
            simulator.schedule(10, lambda index=index: order.append(index))
        simulator.run()
        assert order == [0, 1, 2, 3, 4]

    def test_zero_delay_event_runs_after_current_same_cycle_events(self):
        """An event scheduled at the current cycle runs this cycle, after
        already-enqueued same-cycle events (its sequence number is larger)."""
        simulator = Simulator()
        order = []

        def first():
            order.append("first")
            simulator.schedule(0, lambda: order.append("chained"))

        simulator.schedule(5, first)
        simulator.schedule(5, lambda: order.append("second"))
        simulator.run()
        assert order == ["first", "second", "chained"]
        assert simulator.now == 5

    def test_interleaved_times_still_sequence_ordered_within_cycle(self):
        simulator = Simulator()
        order = []
        simulator.schedule(2, lambda: order.append("t2.a"))
        simulator.schedule(1, lambda: order.append("t1.a"))
        simulator.schedule(2, lambda: order.append("t2.b"))
        simulator.schedule(1, lambda: order.append("t1.b"))
        simulator.run()
        assert order == ["t1.a", "t1.b", "t2.a", "t2.b"]

    def test_queue_pop_orders_by_sequence_at_same_time(self):
        queue = EventQueue()
        first = queue.push(4, lambda: None)
        second = queue.push(4, lambda: None)
        assert first.sequence < second.sequence
        assert queue.pop() is first
        assert queue.pop() is second


class TestDiamondDependencies:
    def _graph(self):
        graph = OperationGraph()
        graph.add_resource(Resource("dma"))
        graph.add_resource(Resource("matrix"))
        graph.add_resource(Resource("simt"))
        return graph

    def test_diamond_join_waits_for_slowest_branch(self):
        """   load
             /    \\
        compute   post     (different resources, run concurrently)
             \\    /
              store                                              """
        graph = self._graph()
        graph.add_operation("load", "dma", 100)
        graph.add_operation("compute", "matrix", 300, deps=["load"])
        graph.add_operation("post", "simt", 50, deps=["load"])
        graph.add_operation("store", "dma", 10, deps=["compute", "post"])
        result = graph.schedule()
        # Branches overlap: post finishes at 150, compute at 400.
        assert result.finish_time("post") == 150
        assert result.finish_time("compute") == 400
        assert result.scheduled["store"].start == 400
        assert result.total_cycles == 410

    def test_diamond_on_shared_resource_serializes_branches(self):
        graph = self._graph()
        graph.add_operation("load", "dma", 100)
        graph.add_operation("branch_a", "matrix", 200, deps=["load"])
        graph.add_operation("branch_b", "matrix", 200, deps=["load"])
        graph.add_operation("join", "dma", 10, deps=["branch_a", "branch_b"])
        result = graph.schedule()
        # Same resource: the second branch queues behind the first.
        assert result.total_cycles == 100 + 200 + 200 + 10

    def test_nested_diamonds(self):
        """Two diamonds chained back to back keep the dependency frontier right."""
        graph = self._graph()
        graph.add_operation("src", "dma", 10)
        graph.add_operation("a1", "matrix", 100, deps=["src"])
        graph.add_operation("b1", "simt", 150, deps=["src"])
        graph.add_operation("mid", "dma", 10, deps=["a1", "b1"])
        graph.add_operation("a2", "matrix", 120, deps=["mid"])
        graph.add_operation("b2", "simt", 80, deps=["mid"])
        graph.add_operation("sink", "dma", 10, deps=["a2", "b2"])
        result = graph.schedule()
        assert result.scheduled["mid"].start == 160  # max(110, 160)
        assert result.scheduled["sink"].start == 170 + 120
        assert result.total_cycles == 300

    def test_diamond_busy_accounting(self):
        graph = self._graph()
        graph.add_operation("load", "dma", 40)
        graph.add_operation("left", "matrix", 60, deps=["load"])
        graph.add_operation("right", "simt", 90, deps=["load"])
        graph.add_operation("join", "dma", 5, deps=["left", "right"])
        result = graph.schedule()
        assert result.resource_busy == {"dma": 45, "matrix": 60, "simt": 90}
        kinds = result.critical_kind_cycles()
        assert sum(kinds.values()) == 45 + 60 + 90


class TestSchedulerRobustness:
    def test_dependency_on_cancelled_style_zero_duration_ops(self):
        """Zero-duration operations are legal joins (used by lowering stubs)."""
        graph = OperationGraph()
        graph.add_resource(Resource("simt"))
        graph.add_operation("a", "simt", 0)
        graph.add_operation("b", "simt", 25, deps=["a"])
        result = graph.schedule()
        assert result.finish_time("a") == 0
        assert result.total_cycles == 25

    def test_wide_fanout_single_resource_is_deterministic(self):
        graph = OperationGraph()
        graph.add_resource(Resource("matrix"))
        graph.add_operation("root", "matrix", 10)
        for index in range(8):
            graph.add_operation(f"leaf{index}", "matrix", 5, deps=["root"])
        result = graph.schedule()
        starts = sorted(result.scheduled[f"leaf{index}"].start for index in range(8))
        assert starts == [10 + 5 * index for index in range(8)]
