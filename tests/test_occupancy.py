"""Tests for the occupancy calculator and the Table 1 regeneration."""

import pytest

from repro.simt.occupancy import (
    GENERATIONS,
    TABLE1_REGISTER_USAGE,
    GpuGenerationSpec,
    OccupancyCalculator,
    table1_occupancies,
)


class TestOccupancyCalculator:
    def test_low_register_usage_hits_warp_slot_limit(self):
        calculator = OccupancyCalculator(GENERATIONS["V100"])
        result = calculator.calculate(registers_per_thread=32, threads_per_block=256)
        assert result.warps_per_sm == result.max_warps_per_sm
        assert result.occupancy == pytest.approx(1.0)

    def test_high_register_usage_limits_occupancy(self):
        calculator = OccupancyCalculator(GENERATIONS["V100"])
        result = calculator.calculate(registers_per_thread=224, threads_per_block=256)
        assert result.limiting_factor == "registers"
        assert result.occupancy < 0.25

    def test_occupancy_monotonic_in_register_usage(self):
        calculator = OccupancyCalculator(GENERATIONS["A100"])
        previous = 1.1
        for registers in (32, 64, 128, 192, 255):
            occupancy = calculator.calculate(registers, threads_per_block=256).occupancy
            assert occupancy <= previous + 1e-9
            previous = occupancy

    def test_shared_memory_limit(self):
        calculator = OccupancyCalculator(GENERATIONS["V100"])
        result = calculator.calculate(
            registers_per_thread=32,
            threads_per_block=256,
            shared_memory_per_block=48 * 1024,
        )
        assert result.warps_per_sm <= 16
        assert result.limiting_factor == "shared_memory"

    def test_invalid_threads_per_block(self):
        calculator = OccupancyCalculator(GENERATIONS["V100"])
        with pytest.raises(ValueError):
            calculator.calculate(64, threads_per_block=0)

    def test_register_granularity_rounding(self):
        spec = GpuGenerationSpec(name="test", register_allocation_granularity=256)
        calculator = OccupancyCalculator(spec)
        # 65 regs * 32 threads = 2080 -> rounds to 2304.
        assert calculator._registers_per_warp(65) == 2304


class TestTable1:
    def test_all_generations_present(self):
        results = table1_occupancies()
        assert set(results) == {"V100", "A100", "H100"}

    def test_occupancy_is_low_for_cutlass_register_usage(self):
        """Table 1's point: CUTLASS GEMM register usage keeps occupancy low (10-20%)."""
        for gpu, result in table1_occupancies().items():
            assert 0.05 <= result.occupancy <= 0.25, gpu

    def test_register_limited_everywhere(self):
        for result in table1_occupancies().values():
            assert result.limiting_factor == "registers"

    def test_register_usage_matches_paper(self):
        assert TABLE1_REGISTER_USAGE == {"V100": 224, "A100": 221, "H100": 168}

    def test_tensor_throughput_scaling_matches_paper(self):
        """Tensor FP16 throughput grows faster than CUDA FP32 across generations."""
        assert GENERATIONS["H100"].tensor_fp16_tflops_rel == pytest.approx(7.9)
        assert GENERATIONS["H100"].cuda_fp32_tflops_rel == pytest.approx(4.3)
        for spec in GENERATIONS.values():
            assert spec.tensor_fp16_tflops_rel >= spec.cuda_fp32_tflops_rel

    def test_macs_per_tensor_core_growth(self):
        """The per-Tensor-Core MAC count grows 64 -> 256 -> 512 (Table 1)."""
        assert GENERATIONS["V100"].macs_per_tensor_core == 64
        assert GENERATIONS["A100"].macs_per_tensor_core == 256
        assert GENERATIONS["H100"].macs_per_tensor_core == 512

    def test_tensor_core_count_does_not_grow(self):
        for spec in GENERATIONS.values():
            assert spec.tensor_cores_rel <= 1.0
