"""Tests for the GEMM kernel models: tiling, reuse (Table 4), functional numerics,
timing results (Table 3) and instruction-count comparisons (Section 6.1.1)."""

import numpy as np
import pytest

from repro.config.soc import DataType
from repro.config.presets import DesignKind, make_design
from repro.kernels.gemm import (
    GemmWorkload,
    gemm_functional,
    reference_gemm,
    simulate_gemm,
    smem_footprint_table,
    smem_read_footprint_bytes,
    tiling_for_design,
)
from repro.kernels.gemm.base import ideal_mac_cycles
from repro.kernels.gemm.reuse import reuse_extents


class TestWorkload:
    def test_square_constructor(self):
        workload = GemmWorkload.square(256)
        assert (workload.m, workload.n, workload.k) == (256, 256, 256)
        assert workload.macs == 256**3
        assert workload.flops == 2 * 256**3

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            GemmWorkload(m=0, n=1, k=1)

    def test_byte_accounting(self):
        workload = GemmWorkload(m=128, n=64, k=32)
        assert workload.input_bytes == 2 * (128 * 32 + 32 * 64)
        assert workload.output_bytes == 4 * 128 * 64


class TestTiling:
    def test_virgo_tiling_matches_operation_tile(self, virgo_design):
        tiling = tiling_for_design(virgo_design, GemmWorkload.square(1024))
        assert (tiling.block_m, tiling.block_n, tiling.block_k) == (128, 64, 128)
        assert tiling.output_tiles == 8 * 16
        assert tiling.k_iterations == 8

    def test_baseline_tiling_same_output_tile(self, hopper_design):
        tiling = tiling_for_design(hopper_design, GemmWorkload.square(1024))
        assert (tiling.block_m, tiling.block_n) == (128, 64)
        assert tiling.block_k == 32

    def test_tiling_clamped_to_small_problems(self, virgo_design):
        tiling = tiling_for_design(virgo_design, GemmWorkload.square(64))
        assert tiling.block_m == 64 and tiling.block_n == 64

    def test_double_buffered_footprint_fits_shared_memory(self, all_design_configs):
        workload = GemmWorkload.square(1024)
        for design in all_design_configs.values():
            tiling = tiling_for_design(design, workload)
            assert tiling.fits_in_shared_memory(design, double_buffered=True)

    def test_iteration_macs_cover_workload(self, virgo_design):
        workload = GemmWorkload.square(512)
        tiling = tiling_for_design(virgo_design, workload)
        assert tiling.total_iterations * tiling.macs_per_iteration == workload.macs


class TestTable4Reuse:
    def test_footprints_match_paper(self):
        """Table 4: 6 MiB / 4 MiB / 2.25 MiB for the 256^3 GEMM."""
        workload = GemmWorkload.square(256)
        volta = smem_read_footprint_bytes(make_design(DesignKind.VOLTA), workload)
        hopper = smem_read_footprint_bytes(make_design(DesignKind.HOPPER), workload)
        virgo = smem_read_footprint_bytes(make_design(DesignKind.VIRGO), workload)
        assert volta / 2**20 == pytest.approx(6.0, rel=0.05)
        assert hopper / 2**20 == pytest.approx(4.0, rel=0.05)
        assert virgo / 2**20 == pytest.approx(2.25, rel=0.05)

    def test_normalization_matches_paper(self):
        """Normalized footprints 2.67 : 1.78 : 1.00."""
        designs = {
            "Tightly-coupled": make_design(DesignKind.VOLTA),
            "Operand-decoupled": make_design(DesignKind.HOPPER),
            "Disaggregated": make_design(DesignKind.VIRGO),
        }
        table = smem_footprint_table(designs, GemmWorkload.square(256))
        assert table["Tightly-coupled"]["normalized"] == pytest.approx(2.67, rel=0.02)
        assert table["Operand-decoupled"]["normalized"] == pytest.approx(1.78, rel=0.02)
        assert table["Disaggregated"]["normalized"] == pytest.approx(1.0)

    def test_fragment_sizes(self):
        assert reuse_extents(make_design(DesignKind.VOLTA)).fragment_rows == 8
        assert reuse_extents(make_design(DesignKind.HOPPER)).fragment_rows == 16
        assert reuse_extents(make_design(DesignKind.VIRGO)).fragment_rows == 16

    def test_ampere_same_as_volta(self):
        workload = GemmWorkload.square(256)
        assert smem_read_footprint_bytes(
            make_design(DesignKind.AMPERE), workload
        ) == smem_read_footprint_bytes(make_design(DesignKind.VOLTA), workload)


class TestFunctionalGemm:
    @pytest.mark.parametrize("kind", list(DesignKind))
    def test_matches_reference(self, kind, rng):
        design = make_design(kind)
        a = rng.standard_normal((64, 64)).astype(np.float32)
        b = rng.standard_normal((64, 64)).astype(np.float32)
        result = gemm_functional(design, a, b)
        np.testing.assert_allclose(result, reference_gemm(a, b), rtol=1e-2, atol=1e-2)

    def test_rectangular_gemm_on_virgo(self, virgo_design, rng):
        a = rng.standard_normal((256, 128)).astype(np.float32)
        b = rng.standard_normal((128, 192)).astype(np.float32)
        result = gemm_functional(virgo_design, a, b)
        np.testing.assert_allclose(result, reference_gemm(a, b), rtol=1e-2, atol=1e-1)

    def test_misaligned_size_rejected_for_tensor_cores(self, volta_design, rng):
        a = rng.standard_normal((60, 60))
        b = rng.standard_normal((60, 60))
        with pytest.raises(ValueError):
            gemm_functional(volta_design, a, b)


class TestGemmTiming:
    @pytest.fixture(scope="class")
    def results(self):
        sizes = (256, 512, 1024)
        return {
            (kind, size): simulate_gemm(kind, size)
            for kind in DesignKind
            for size in sizes
        }

    def test_utilization_ordering_matches_paper(self, results):
        """Table 3 ordering: Virgo >= Hopper > Ampere > Volta at every size."""
        for size in (256, 512, 1024):
            volta = results[(DesignKind.VOLTA, size)].mac_utilization
            ampere = results[(DesignKind.AMPERE, size)].mac_utilization
            hopper = results[(DesignKind.HOPPER, size)].mac_utilization
            virgo = results[(DesignKind.VIRGO, size)].mac_utilization
            assert virgo >= hopper > ampere > volta, f"size {size}"

    def test_utilization_increases_with_size(self, results):
        """Larger GEMMs amortize overheads for every design."""
        for kind in DesignKind:
            assert (
                results[(kind, 1024)].mac_utilization
                >= results[(kind, 256)].mac_utilization - 0.02
            )

    def test_utilization_within_paper_band(self, results):
        """Measured utilization within +/- 12 percentage points of the paper."""
        paper = {
            (DesignKind.VOLTA, 256): 25.6,
            (DesignKind.VOLTA, 512): 30.3,
            (DesignKind.VOLTA, 1024): 30.3,
            (DesignKind.AMPERE, 256): 37.5,
            (DesignKind.AMPERE, 512): 45.6,
            (DesignKind.AMPERE, 1024): 52.3,
            (DesignKind.HOPPER, 256): 60.5,
            (DesignKind.HOPPER, 512): 72.8,
            (DesignKind.HOPPER, 1024): 77.0,
            (DesignKind.VIRGO, 256): 66.1,
            (DesignKind.VIRGO, 512): 77.9,
            (DesignKind.VIRGO, 1024): 86.5,
        }
        for key, expected in paper.items():
            measured = results[key].mac_utilization_percent
            assert abs(measured - expected) <= 12.0, (key, measured, expected)

    def test_total_cycles_exceed_ideal(self, results):
        for result in results.values():
            assert result.total_cycles >= result.ideal_mac_cycles

    def test_virgo_instruction_collapse(self, results):
        """Section 6.1.1: Virgo retires ~0.5% of Volta's and ~8% of Hopper's instructions."""
        for size in (512, 1024):
            virgo = results[(DesignKind.VIRGO, size)].retired_instructions
            volta = results[(DesignKind.VOLTA, size)].retired_instructions
            hopper = results[(DesignKind.HOPPER, size)].retired_instructions
            assert virgo / volta < 0.02
            assert virgo / hopper < 0.20

    def test_counters_populated(self, results):
        result = results[(DesignKind.VIRGO, 256)]
        assert result.counters["matrix_unit.pe.macs"] == pytest.approx(256**3)
        assert result.counters["dram.bytes"] > 0

    def test_macs_counted_exactly_for_all_designs(self, results):
        for kind in DesignKind:
            result = results[(kind, 256)]
            assert result.counters["matrix_unit.pe.macs"] == pytest.approx(256**3, rel=0.01)

    def test_ideal_mac_cycles(self):
        design = make_design(DesignKind.VIRGO)
        assert ideal_mac_cycles(design, GemmWorkload.square(256)) == pytest.approx(65536)

    def test_volta_dominated_by_core_energy(self, results):
        """Figure 9: the Vortex core dominates the tightly-coupled designs' energy."""
        from repro.energy.breakdown import soc_breakdown
        from repro.energy.model import EnergyTable

        result = results[(DesignKind.VOLTA, 512)]
        breakdown = soc_breakdown("volta", result.counters, EnergyTable())
        assert breakdown.dominant_component() == "Vortex Core"

    def test_rectangular_workload_supported(self):
        result = simulate_gemm(DesignKind.VIRGO, GemmWorkload(m=512, n=256, k=128))
        assert result.total_cycles > 0
        assert result.mac_utilization > 0.3

    def test_fp32_configs_simulate(self):
        result = simulate_gemm(DesignKind.VIRGO, 256, DataType.FP32)
        assert result.mac_utilization > 0.3
