"""Masked-attention exactness: differential harness and mask-count oracle.

The timing model claims masked attention work is *exact* -- no 0.5
approximation anywhere in the attention path.  This suite proves it from
two independent directions:

* a **brute-force numpy oracle** builds the actual boolean mask (causal,
  causal-with-history, sliding-window, block-diagonal varlen), counts
  surviving elements and visited tiles, and checks the closed-form integer
  arithmetic in :mod:`repro.kernels.masking` against it, element for
  element, across a hypothesis-drawn shape space;
* a **schedule differential** runs every masked shape through both flash
  executors -- steady-state compressed vs ``full_expansion=True`` -- on
  both mappings (Virgo, Ampere-style) and across tile configurations, and
  requires byte-identical results, plus a compression-ratio guard so the
  masked path keeps the O(#segments) cost contract.

The oracle here is deliberately an independent implementation (dense
numpy, no shared helpers) so a bug in the closed forms cannot hide in a
shared formula.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.presets import DesignKind
from repro.kernels.flash_attention import (
    FlashAttentionWorkload,
    simulate_flash_attention,
)
from repro.kernels.gemm.schedule_loops import (
    FlashLoopSpec,
    FlashPipe,
    FlashSegment,
    execute_flash_loop,
)
from repro.kernels.masking import (
    allowed_keys,
    masked_elements,
    masked_elements_varlen,
    tile_trips,
    tile_trips_varlen,
    trip_segments,
)
from repro.workloads import TensorShape, build_model, lower_graph, run_model
from repro.workloads.graph import AttentionLayer
from repro.workloads.models import MODEL_ZOO


# --------------------------------------------------------------------------- #
# Brute-force numpy oracle (independent of repro.kernels.masking)
# --------------------------------------------------------------------------- #


def oracle_mask(seq: int, kv: int, window: int = 0) -> np.ndarray:
    """Dense boolean mask: row i sees keys 0..(kv-seq)+i, windowed."""
    rows = np.arange(seq)[:, None]
    cols = np.arange(kv)[None, :]
    hi = (kv - seq) + rows  # last allowed key, inclusive
    mask = cols <= hi
    if window:
        mask &= cols > hi - window
    return mask


def oracle_mask_varlen(seq_lens, window: int = 0) -> np.ndarray:
    total = sum(seq_lens)
    mask = np.zeros((total, total), dtype=bool)
    offset = 0
    for length in seq_lens:
        mask[offset : offset + length, offset : offset + length] = oracle_mask(
            length, length, window
        )
        offset += length
    return mask


def oracle_trips(mask: np.ndarray, block_q: int, block_kv: int):
    """Visited-KV-tile count per Q tile: contiguous span of non-empty tiles."""
    seq = mask.shape[0]
    trips = []
    for q_start in range(0, seq, block_q):
        columns = np.flatnonzero(mask[q_start : q_start + block_q].any(axis=0))
        trips.append(columns[-1] // block_kv - columns[0] // block_kv + 1)
    return trips


def oracle_trips_varlen(seq_lens, block_q: int, block_kv: int, window: int = 0):
    trips = []
    for length in seq_lens:
        trips.extend(oracle_trips(oracle_mask(length, length, window), block_q, block_kv))
    return trips


# --------------------------------------------------------------------------- #
# Closed forms vs the oracle
# --------------------------------------------------------------------------- #


class TestMaskCountsMatchOracle:
    @given(
        seq=st.integers(1, 96),
        kv_extra=st.integers(0, 80),
        window=st.integers(0, 120),
    )
    @settings(max_examples=150, deadline=None)
    def test_masked_elements(self, seq, kv_extra, window):
        kv = seq + kv_extra
        assert masked_elements(seq, kv, window) == int(
            oracle_mask(seq, kv, window).sum()
        )

    @given(
        seq=st.integers(1, 96),
        kv_extra=st.integers(0, 80),
        block_q=st.integers(1, 48),
        block_kv=st.integers(1, 48),
        window=st.integers(0, 120),
    )
    @settings(max_examples=150, deadline=None)
    def test_tile_trips(self, seq, kv_extra, block_q, block_kv, window):
        kv = seq + kv_extra
        trips = tile_trips(seq, kv, block_q, block_kv, window)
        assert trips == oracle_trips(oracle_mask(seq, kv, window), block_q, block_kv)
        # The RLE profile expands back to exactly the per-tile counts.
        expanded = [
            trip for q_tiles, trip in trip_segments(trips) for _ in range(q_tiles)
        ]
        assert expanded == trips

    @given(
        seq_lens=st.lists(st.integers(1, 64), min_size=1, max_size=5),
        block=st.sampled_from([(16, 16), (32, 24), (24, 40)]),
        window=st.integers(0, 48),
    )
    @settings(max_examples=60, deadline=None)
    def test_varlen(self, seq_lens, block, window):
        block_q, block_kv = block
        assert masked_elements_varlen(seq_lens, window) == int(
            oracle_mask_varlen(seq_lens, window).sum()
        )
        assert tile_trips_varlen(seq_lens, block_q, block_kv, window) == (
            oracle_trips_varlen(seq_lens, block_q, block_kv, window)
        )

    def test_allowed_keys_row_by_row(self):
        mask = oracle_mask(7, 12, window=4)
        for row in range(7):
            lo, hi = allowed_keys(row, 7, 12, window=4)
            assert list(np.flatnonzero(mask[row])) == list(range(lo, hi))

    def test_rejects_kv_shorter_than_seq(self):
        with pytest.raises(ValueError, match="kv >= seq"):
            masked_elements(8, 4)


# --------------------------------------------------------------------------- #
# AttentionLayer: exact fractions, no silent 1.0, no float truncation
# --------------------------------------------------------------------------- #


class TestAttentionLayerExactness:
    def test_history_regression_old_silent_one(self):
        """Causal prefill over prior context used to return fraction 1.0
        whenever ``kv_length != seq`` -- it must charge the trapezoid
        ``(kv - (seq-1)/2)/kv`` instead."""
        shape = TensorShape(batch=1, seq=128, features=256)
        layer = AttentionLayer(
            name="attn", heads=4, head_dim=64, causal=True, kv_seq=384
        )
        fraction = layer.causal_work_fraction(shape)
        assert fraction == (384 - (128 - 1) / 2) / 384
        assert fraction < 1.0
        assert layer.masked_score_elements(shape) == 4 * int(
            oracle_mask(128, 384).sum()
        )

    def test_full_triangle_fraction(self):
        shape = TensorShape(batch=2, seq=63, features=256)
        layer = AttentionLayer(name="attn", heads=4, head_dim=64, causal=True)
        assert layer.causal_work_fraction(shape) == (63 + 1) / (2 * 63)

    def test_score_macs_integer_exact_odd_shapes(self):
        """MACs accumulate in integer mask counts: for an odd triangle the
        old ``int(macs * 0.5)`` floored away half a MAC row."""
        shape = TensorShape(batch=1, seq=7, features=64)
        layer = AttentionLayer(name="attn", heads=1, head_dim=64, causal=True)
        assert layer.score_macs(shape) == 2 * (7 * 8 // 2) * 64
        # Windowed decode keeps exactly the live keys.
        decode_shape = TensorShape(batch=1, seq=1, features=64)
        windowed = AttentionLayer(
            name="w", heads=1, head_dim=64, causal=True, kv_seq=1000, window=96
        )
        assert windowed.masked_score_elements(decode_shape) == 96

    def test_varlen_layer_counts_block_diagonal(self):
        shape = TensorShape(batch=1, seq=320, features=256)
        layer = AttentionLayer(
            name="attn", heads=4, head_dim=64, causal=True, seq_lens=(96, 160, 64)
        )
        assert layer.masked_score_elements(shape) == 4 * int(
            oracle_mask_varlen((96, 160, 64)).sum()
        )
        with pytest.raises(ValueError, match="sum"):
            layer.masked_score_elements(TensorShape(batch=1, seq=300, features=256))

    def test_mask_fields_require_causal(self):
        with pytest.raises(ValueError, match="causal"):
            AttentionLayer(name="bad", heads=1, head_dim=64, window=32)
        with pytest.raises(ValueError, match="causal"):
            AttentionLayer(name="bad", heads=1, head_dim=64, seq_lens=(4, 4))


# --------------------------------------------------------------------------- #
# Schedule differential: compressed == full expansion, byte for byte
# --------------------------------------------------------------------------- #

MASK_SHAPES = [
    # (label, causal, kv_len, window, seq_lens, seq_len)
    ("causal", True, 0, 0, (), 256),
    ("history", True, 448, 0, (), 192),
    ("window", True, 0, 48, (), 256),
    ("window-history", True, 512, 80, (), 256),
    ("varlen", True, 0, 0, (96, 160, 64), 320),
    ("varlen-window", True, 0, 24, (40, 112, 56, 112), 320),
    ("unmasked", False, 0, 0, (), 256),
]

TILE_CONFIGS = [(64, 64), (32, 48), (96, 80)]


@pytest.mark.parametrize("design", [DesignKind.VIRGO, DesignKind.AMPERE])
@pytest.mark.parametrize("label,causal,kv_len,window,seq_lens,seq_len", MASK_SHAPES)
def test_masked_schedule_differential(
    design, label, causal, kv_len, window, seq_lens, seq_len
):
    """Compressed masked flash schedules are byte-identical to the
    ``full_expansion=True`` oracle, and their reported MACs equal the
    integer mask-count oracle -- across both mappings and 3 tile configs."""
    for block_q, block_kv in TILE_CONFIGS:
        workload = FlashAttentionWorkload(
            seq_len=seq_len,
            heads=3,
            block_q=block_q,
            block_kv=block_kv,
            causal=causal,
            kv_len=kv_len,
            window=window,
            seq_lens=seq_lens,
        )
        compressed = simulate_flash_attention(design, workload)
        expanded = simulate_flash_attention(design, workload, full_expansion=True)
        assert compressed.total_cycles == expanded.total_cycles
        assert compressed.phase_cycles == expanded.phase_cycles
        assert compressed.counters.as_dict() == expanded.counters.as_dict()
        assert compressed.ideal_mac_cycles == expanded.ideal_mac_cycles

        # Reported work equals the brute-force mask count exactly.
        if seq_lens:
            mask = oracle_mask_varlen(seq_lens, window)
        elif causal:
            mask = oracle_mask(seq_len, kv_len or seq_len, window)
        else:
            mask = np.ones((seq_len, seq_len), dtype=bool)
        elements = int(mask.sum())
        assert workload.gemm_macs == 2 * 3 * elements * workload.head_dim
        assert workload.softmax_elements == 3 * elements


@given(
    seq=st.integers(2, 200),
    kv_extra=st.integers(0, 128),
    block_q=st.integers(8, 64),
    block_kv=st.integers(8, 64),
    window=st.integers(0, 160),
    heads=st.integers(1, 4),
)
@settings(max_examples=40, deadline=None)
def test_masked_compression_property(seq, kv_extra, block_q, block_kv, window, heads):
    """Hypothesis sweep over (seq, kv_seq, block_q, block_kv, window): the
    compressed masked schedule equals the expanded oracle byte-identically
    on a raw :class:`FlashLoopSpec` with adversarial pipe durations."""
    trips = tile_trips(seq, seq + kv_extra, block_q, block_kv, window)
    profile = tuple(
        FlashSegment(q_tiles=q_tiles, kv_trips=kv) for q_tiles, kv in trip_segments(trips)
    )
    spec = FlashLoopSpec(
        iterations=heads * sum(trips),
        pipes=(
            FlashPipe(kind="matrix", resource="matrix", cycles=1117),
            FlashPipe(kind="softmax", resource="simt", cycles=923),
            FlashPipe(kind="dma", resource="dma", cycles=1301),
        ),
        sync_cycles=37,
        prologue_cycles=513,
        epilogue_cycles=211,
        epilogue_count=max(1, seq // block_q),
        trip_profile=profile,
        profile_repeats=heads,
    )
    compressed = execute_flash_loop(spec)
    expanded = execute_flash_loop(spec, full_expansion=True)
    assert compressed.total_cycles == expanded.total_cycles
    assert compressed.kind_cycles == expanded.kind_cycles
    assert compressed.resource_busy == expanded.resource_busy
    assert compressed.operation_count == expanded.executed_operations


def test_profile_must_cover_iterations():
    with pytest.raises(ValueError, match="covers"):
        FlashLoopSpec(
            iterations=10,
            pipes=(FlashPipe(kind="matrix", resource="matrix", cycles=5),),
            trip_profile=(FlashSegment(q_tiles=3, kv_trips=2),),
        )


# --------------------------------------------------------------------------- #
# Compression-ratio guard (runs in the CI perf-smoke path)
# --------------------------------------------------------------------------- #


class TestMaskedCompressionStaysCheap:
    def test_masked_executed_operations_track_segments(self):
        """Masked compression is O(#segments): executed operations stay a
        vanishing fraction of the visited-tile total, the same order of
        guarantee the unmasked loop has."""
        workload = FlashAttentionWorkload(seq_len=16384, heads=4, causal=True)
        result = simulate_flash_attention(DesignKind.VIRGO, workload)
        stats = result.schedule_stats
        segments = len(workload.flash_segments())
        # Each segment costs a bounded handful of concrete operations
        # (run_loop warm-up), independent of seq_len and heads.
        assert stats["executed_operations"] <= 25 * segments
        ratio = stats["operation_count"] / stats["executed_operations"]
        assert ratio >= 10

    def test_masked_faster_than_unmasked_total(self):
        """The exact masked schedule does strictly less work than the
        unmasked rectangle -- the whole point of tile skipping."""
        masked = simulate_flash_attention(
            DesignKind.VIRGO, FlashAttentionWorkload(seq_len=4096, causal=True)
        )
        unmasked = simulate_flash_attention(
            DesignKind.VIRGO, FlashAttentionWorkload(seq_len=4096)
        )
        assert masked.total_cycles < unmasked.total_cycles
        windowed = simulate_flash_attention(
            DesignKind.VIRGO,
            FlashAttentionWorkload(seq_len=4096, causal=True, window=256),
        )
        assert windowed.total_cycles < masked.total_cycles


# --------------------------------------------------------------------------- #
# Lowering integration: fused + decomposed paths report oracle-exact MACs
# --------------------------------------------------------------------------- #


class TestLoweringMaskExactness:
    def test_fused_history_shape_now_fuses(self):
        """Chunked prefill (kv > seq) reaches the fused kernel instead of
        silently decomposing at full rectangular work."""
        schedule = lower_graph(build_model("gpt-prefill-history"), DesignKind.VIRGO)
        flash = [inv for inv in schedule.invocations if inv.kind == "flash"]
        assert flash
        workload = flash[0].workload
        assert workload.causal and workload.kv_len == 384
        assert workload.gemm_macs == 2 * 8 * int(oracle_mask(128, 384).sum()) * 64

    def test_decomposed_reported_macs_match_oracle(self):
        """On a design without the fused mapping the score GEMMs run the
        full rectangle but report exactly the surviving mask elements."""
        schedule = lower_graph(build_model("gpt-prefill"), DesignKind.HOPPER)
        spec = MODEL_ZOO["gpt-prefill"]
        scores = [
            inv
            for inv in schedule.invocations
            if inv.kind == "gemm" and inv.name.endswith(".scores")
        ]
        assert scores
        elements = spec.heads * int(oracle_mask(spec.seq_len, spec.seq_len).sum())
        for inv in scores:
            assert inv.reported_macs == elements * spec.head_dim
        softmax = [
            inv for inv in schedule.invocations if inv.name.endswith("attn.softmax")
        ]
        assert all(inv.elements == elements for inv in softmax)

    def test_windowed_decode_shrinks_context_gemm(self):
        spec = MODEL_ZOO["gpt-decode"]
        windowed = lower_graph(
            build_model(
                spec.__class__(**{**spec.to_dict(), "window": 128})
            ),
            DesignKind.VIRGO,
        )
        scores = next(
            inv for inv in windowed.invocations if inv.name.endswith(".scores")
        )
        assert scores.workload.n == 128
        assert scores.reported_macs == spec.heads * 128 * spec.head_dim

    def test_masked_zoo_variants_run_end_to_end(self):
        for name in ("gpt-prefill-history", "gpt-prefill-sw", "gpt-prefill-varlen"):
            result = run_model(name, DesignKind.VIRGO)
            assert result.total_cycles > 0
            attn = [layer for layer in result.layers if layer.layer.endswith(".attn")]
            assert attn and all(layer.macs > 0 for layer in attn)

    def test_varlen_packs_cheaper_than_padded_batch(self):
        """The reason varlen exists: packing (96, 160, 64) costs less score
        work than padding three sequences to 160."""
        shape = TensorShape(batch=1, seq=320, features=512)
        packed = AttentionLayer(
            name="p", heads=8, head_dim=64, causal=True, seq_lens=(96, 160, 64)
        )
        padded = AttentionLayer(name="d", heads=8, head_dim=64, causal=True)
        padded_shape = TensorShape(batch=3, seq=160, features=512)
        assert packed.score_macs(shape) < padded.score_macs(padded_shape)


# --------------------------------------------------------------------------- #
# Tooling: the attention-path lint holds on the current tree
# --------------------------------------------------------------------------- #


def test_attention_lint_passes():
    script = Path(__file__).resolve().parents[1] / "tools" / "check_attention_lint.py"
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stdout + result.stderr
