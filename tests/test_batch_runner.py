"""Tests for the cached parallel batch runner."""

import json

import pytest

import repro.workloads.batch as batch_module
from repro.workloads import (
    BatchJob,
    ModelSpec,
    RequestSpec,
    ResultCache,
    ServingJob,
    ServingTrace,
    run_batch,
    resolve_spec,
    scaled_spec,
    serving_sweep_jobs,
    sweep_jobs,
)

#: A deliberately tiny spec so batch tests stay fast.
TINY = scaled_spec(resolve_spec("gpt-decode"), blocks=1, hidden=128, heads=4, context_len=64)

#: A two-request serving trace sized for sub-second job execution.
TINY_TRACE = ServingTrace(
    name="batch-tiny",
    requests=(
        RequestSpec(
            request_id="t0",
            model=ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                            hidden=128, blocks=1, heads=4),
            arrival_cycle=0, prompt_len=32, decode_steps=2,
        ),
        RequestSpec(
            request_id="t1",
            model=ModelSpec(family="moe", phase="decode", batch=1, seq_len=32,
                            hidden=128, blocks=1, heads=4, experts=4, top_k=2),
            arrival_cycle=100, prompt_len=32, decode_steps=2,
        ),
    ),
    context_bucket=32,
)


class TestCacheKeys:
    def test_key_is_deterministic(self):
        assert BatchJob(TINY, "virgo").key() == BatchJob(TINY, "virgo").key()

    def test_key_depends_on_design_and_flags(self):
        base = BatchJob(TINY, "virgo")
        assert base.key() != BatchJob(TINY, "ampere").key()
        assert base.key() != BatchJob(TINY, "virgo", heterogeneous=True).key()

    def test_key_depends_on_spec_content(self):
        other = scaled_spec(TINY, context_len=128)
        assert BatchJob(TINY, "virgo").key() != BatchJob(other, "virgo").key()

    def test_name_and_spec_spellings_share_a_key(self):
        by_name = BatchJob("gpt-decode", "virgo")
        by_spec = BatchJob(resolve_spec("gpt-decode"), "virgo")
        assert by_name.key() == by_spec.key()


class TestResultCache:
    def test_missing_entry_is_none(self, tmp_path):
        assert ResultCache(tmp_path).get("deadbeef") is None

    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"total_cycles": 42})
        assert cache.get("k") == {"total_cycles": 42}
        assert len(cache) == 1

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("bad").write_text("{not json", encoding="utf-8")
        assert cache.get("bad") is None


class TestRunBatch:
    def test_second_run_hits_cache_without_recomputation(self, tmp_path, monkeypatch):
        jobs = [BatchJob(TINY, "virgo"), BatchJob(TINY, "ampere")]

        first = run_batch(jobs, cache_dir=tmp_path, max_workers=1)
        assert first.computed == 2 and first.cached == 0

        # Any recomputation on the second run would call the worker; poison it.
        def explode(job):
            raise AssertionError(f"job {job.label} recomputed despite warm cache")

        monkeypatch.setattr(batch_module, "_execute_job", explode)
        second = run_batch(jobs, cache_dir=tmp_path, max_workers=1)
        assert second.computed == 0 and second.cached == 2
        assert [o.result for o in second.outcomes] == [o.result for o in first.outcomes]

    def test_results_match_direct_run(self, tmp_path):
        job = BatchJob(TINY, "virgo")
        report = run_batch([job], cache_dir=tmp_path, max_workers=1)
        direct = batch_module.run_model(TINY, "virgo").to_dict()
        assert report.outcomes[0].result == direct

    def test_no_cache_dir_disables_caching(self):
        report = run_batch([BatchJob(TINY, "virgo")], cache_dir=None, max_workers=1)
        assert report.computed == 1
        report_again = run_batch([BatchJob(TINY, "virgo")], cache_dir=None, max_workers=1)
        assert report_again.computed == 1

    def test_spec_change_invalidates_only_affected_entries(self, tmp_path):
        job_a = BatchJob(TINY, "virgo")
        run_batch([job_a], cache_dir=tmp_path, max_workers=1)
        job_b = BatchJob(scaled_spec(TINY, context_len=128), "virgo")
        report = run_batch([job_a, job_b], cache_dir=tmp_path, max_workers=1)
        assert report.cached == 1 and report.computed == 1

    def test_process_pool_path(self, tmp_path):
        """Misses fan out over worker processes and still land in the cache."""
        jobs = [BatchJob(TINY, "virgo"), BatchJob(TINY, "ampere")]
        report = run_batch(jobs, cache_dir=tmp_path, max_workers=2)
        assert report.computed == 2
        assert len(ResultCache(tmp_path)) == 2
        for outcome in report.outcomes:
            json.dumps(outcome.result)

    def test_cached_entries_are_canonical_json_files(self, tmp_path):
        job = BatchJob(TINY, "virgo")
        run_batch([job], cache_dir=tmp_path, max_workers=1)
        path = ResultCache(tmp_path).path_for(job.key())
        assert path.exists()
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["kind"] == "model"
        assert on_disk["design"] == "Virgo"


class TestSweepJobs:
    def test_cross_product(self):
        jobs = sweep_jobs(["gpt-prefill", "gpt-decode"], ["virgo", "ampere"])
        assert len(jobs) == 4
        assert {job.label for job in jobs} == {
            "gpt-prefill@virgo",
            "gpt-prefill@ampere",
            "gpt-decode@virgo",
            "gpt-decode@ampere",
        }

    def test_unknown_model_fails_at_key_time(self):
        with pytest.raises(KeyError):
            BatchJob("not-a-model", "virgo").key()

    def test_heterogeneous_sequence_crosses_into_jobs(self):
        jobs = sweep_jobs(["gpt-decode"], ["virgo"], heterogeneous=(False, True))
        assert len(jobs) == 2
        assert [job.heterogeneous for job in jobs] == [False, True]
        assert {job.label for job in jobs} == {"gpt-decode@virgo", "gpt-decode@virgo+hetero"}

    def test_heterogeneous_bool_keeps_single_flag(self):
        jobs = sweep_jobs(["gpt-decode"], ["virgo"], heterogeneous=True)
        assert [job.heterogeneous for job in jobs] == [True]


class TestCacheSchemaBump:
    def test_old_schema_entries_are_ignored_not_misread(self, tmp_path, monkeypatch):
        """A schema bump must orphan old entries entirely: a result cached
        under the previous schema version is never returned for the same
        job content under the current one."""
        job = BatchJob(TINY, "virgo")
        monkeypatch.setattr(batch_module, "CACHE_SCHEMA_VERSION", 2)
        old_key = job.key()
        poisoned = {"kind": "model", "total_cycles": -1, "schema": "stale"}
        ResultCache(tmp_path).put(old_key, poisoned)
        monkeypatch.undo()

        assert job.key() != old_key  # the bump moved the key namespace
        report = run_batch([job], cache_dir=tmp_path, max_workers=1)
        assert report.computed == 1 and report.cached == 0
        assert report.outcomes[0].result != poisoned
        assert report.outcomes[0].result["total_cycles"] > 0

    def test_schema_version_is_part_of_every_key(self, monkeypatch):
        model_key = BatchJob(TINY, "virgo").key()
        serving_key = ServingJob(TINY_TRACE, "virgo").key()
        monkeypatch.setattr(batch_module, "CACHE_SCHEMA_VERSION", 999)
        assert BatchJob(TINY, "virgo").key() != model_key
        assert ServingJob(TINY_TRACE, "virgo").key() != serving_key

    def test_model_and_serving_keys_never_collide(self):
        # The "kind" discriminator keeps the two job namespaces disjoint
        # even if a trace payload ever mirrored a spec payload.
        assert BatchJob(TINY, "virgo").key() != ServingJob(TINY_TRACE, "virgo").key()


class TestTimingCacheSnapshotAcrossProcesses:
    def test_snapshot_round_trips_deterministically_across_processes(self, tmp_path):
        """Worker processes seeded from the parent's warm timing cache must
        produce byte-identical results to an inline run: the snapshot is a
        faithful, deterministic transport of the parent's entries."""
        from repro.perf import timing_cache

        timing_cache().clear()
        try:
            inline = run_batch(
                [BatchJob(TINY, "virgo"), BatchJob(TINY, "ampere")],
                cache_dir=None, max_workers=1,
            )
            assert timing_cache().snapshot()  # the parent cache is warm now
            pooled = run_batch(
                [BatchJob(TINY, "virgo"), BatchJob(TINY, "ampere")],
                cache_dir=None, max_workers=2,
            )
        finally:
            timing_cache().clear()
        inline_results = [outcome.result for outcome in inline.outcomes]
        pooled_results = [outcome.result for outcome in pooled.outcomes]
        assert json.dumps(pooled_results, sort_keys=True) == json.dumps(
            inline_results, sort_keys=True
        )

    def test_seeded_worker_result_matches_unseeded(self):
        """Seeding is a pure accelerator: loading a snapshot into a fresh
        cache changes hit/miss accounting, never results."""
        from repro.perf import timing_cache

        timing_cache().clear()
        try:
            cold = batch_module._execute_job(BatchJob(TINY, "virgo"))
            snapshot = timing_cache().snapshot()
            timing_cache().clear()
            batch_module._seed_worker_cache(snapshot)
            hits_before = timing_cache().hits
            warm = batch_module._execute_job(BatchJob(TINY, "virgo"))
            assert timing_cache().hits > hits_before
            assert timing_cache().misses == 0
            assert warm == cold
        finally:
            timing_cache().clear()


class TestDuplicateSweepCells:
    def test_sweep_jobs_rejects_repeated_model(self):
        with pytest.raises(ValueError, match="duplicate sweep cell"):
            sweep_jobs(["gpt-decode", "gpt-decode"], ["virgo"])

    def test_sweep_jobs_rejects_name_and_spec_spelling_the_same_content(self):
        with pytest.raises(ValueError, match="duplicate sweep cell"):
            sweep_jobs(["gpt-decode", resolve_spec("gpt-decode")], ["virgo"])

    def test_moe_sweep_rejects_repeated_knob_value(self):
        with pytest.raises(ValueError, match="duplicate sweep cell"):
            batch_module.moe_sweep_jobs(experts=(8, 8), top_ks=(2,), heterogeneous=False)

    def test_serving_sweep_rejects_repeated_trace(self):
        with pytest.raises(ValueError, match="duplicate sweep cell"):
            serving_sweep_jobs([TINY_TRACE, TINY_TRACE], ["virgo"], heterogeneous=False)

    def test_distinct_cells_still_pass(self):
        jobs = sweep_jobs(["gpt-decode"], ["virgo", "ampere"], heterogeneous=False)
        assert len(jobs) == 2

    def test_cli_batch_reports_duplicate_as_clean_exit(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="duplicate sweep cell"):
            main(["model", "--batch", "--names", "gpt-decode,gpt-decode",
                  "--designs", "virgo"])


class TestServingJobs:
    def test_key_is_deterministic_and_content_addressed(self):
        assert ServingJob(TINY_TRACE, "virgo").key() == ServingJob(TINY_TRACE, "virgo").key()
        assert (
            ServingJob(TINY_TRACE, "virgo").key()
            != ServingJob(TINY_TRACE, "ampere").key()
        )
        assert (
            ServingJob(TINY_TRACE, "virgo").key()
            != ServingJob(TINY_TRACE, "virgo", heterogeneous=True).key()
        )

    def test_trace_content_changes_key(self):
        import dataclasses

        shifted = dataclasses.replace(
            TINY_TRACE,
            requests=(
                TINY_TRACE.requests[0],
                dataclasses.replace(TINY_TRACE.requests[1], arrival_cycle=999),
            ),
        )
        assert ServingJob(TINY_TRACE, "virgo").key() != ServingJob(shifted, "virgo").key()

    def test_name_and_trace_spellings_share_a_key(self):
        by_name = ServingJob("poisson-mixed", "virgo")
        by_trace = ServingJob(batch_module.resolve_trace("poisson-mixed"), "virgo")
        assert by_name.key() == by_trace.key()

    def test_label_names_trace_design_and_units(self):
        assert ServingJob(TINY_TRACE, "virgo").label == "serve:batch-tiny@virgo"
        assert (
            ServingJob(TINY_TRACE, "ampere", heterogeneous=True).label
            == "serve:batch-tiny@ampere+hetero"
        )

    def test_serving_sweep_cross_product(self):
        jobs = serving_sweep_jobs([TINY_TRACE], ["virgo"], heterogeneous=(False, True))
        assert [job.heterogeneous for job in jobs] == [False, True]

    def test_run_batch_executes_and_caches_serving_jobs(self, tmp_path, monkeypatch):
        job = ServingJob(TINY_TRACE, "virgo")
        first = run_batch([job], cache_dir=tmp_path, max_workers=1)
        assert first.computed == 1
        result = first.outcomes[0].result
        assert result["kind"] == "serving"
        assert result["decode_steps_executed"] == TINY_TRACE.total_decode_steps

        def explode(job):
            raise AssertionError("serving job recomputed despite warm cache")

        monkeypatch.setattr(batch_module, "_execute_job", explode)
        second = run_batch([job], cache_dir=tmp_path, max_workers=1)
        assert second.cached == 1
        assert second.outcomes[0].result == result

    def test_serving_result_matches_direct_run(self, tmp_path):
        report = run_batch([ServingJob(TINY_TRACE, "virgo")], cache_dir=tmp_path,
                           max_workers=1)
        direct = batch_module.run_serving(TINY_TRACE, "virgo").to_dict()
        assert report.outcomes[0].result == direct


class TestSpecResolution:
    def test_spec_resolved_once_per_job(self, monkeypatch):
        calls = []
        real = batch_module.resolve_spec

        def counting(name):
            calls.append(name)
            return real(name)

        monkeypatch.setattr(batch_module, "resolve_spec", counting)
        job = BatchJob("gpt-decode", "virgo")
        job.key()
        job.key()
        assert job.spec is job.spec
        assert calls == ["gpt-decode"]

    def test_explicit_spec_never_resolves(self, monkeypatch):
        monkeypatch.setattr(
            batch_module, "resolve_spec", lambda name: pytest.fail("resolved a ModelSpec job")
        )
        assert BatchJob(TINY, "virgo").spec is TINY


class TestWorkerCacheSeeding:
    def test_seed_worker_cache_loads_entries(self):
        from repro.perf import timing_cache
        from repro.runner import run_gemm
        from repro.config.presets import DesignKind

        timing_cache().clear()
        try:
            run_gemm(DesignKind.VIRGO, 128)
            snapshot = timing_cache().snapshot()
            assert snapshot
            timing_cache().clear()
            batch_module._seed_worker_cache(snapshot)
            assert len(timing_cache()) == len(snapshot["entries"])
            # A seeded lookup is a hit, not a recomputation.
            run_gemm(DesignKind.VIRGO, 128)
            assert timing_cache().hits == 1 and timing_cache().misses == 0
        finally:
            timing_cache().clear()

    def test_snapshot_is_picklable_for_pool_initargs(self):
        import pickle

        from repro.perf import timing_cache
        from repro.runner import run_flash_attention, run_gemm
        from repro.config.presets import DesignKind

        timing_cache().clear()
        try:
            run_gemm(DesignKind.VIRGO, 128)
            run_flash_attention(DesignKind.VIRGO)
            restored = pickle.loads(pickle.dumps(timing_cache().snapshot()))
            assert len(restored["entries"]) == 2
        finally:
            timing_cache().clear()
