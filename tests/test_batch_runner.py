"""Tests for the cached parallel batch runner."""

import json

import pytest

import repro.workloads.batch as batch_module
from repro.workloads import (
    BatchJob,
    ResultCache,
    run_batch,
    resolve_spec,
    scaled_spec,
    sweep_jobs,
)

#: A deliberately tiny spec so batch tests stay fast.
TINY = scaled_spec(resolve_spec("gpt-decode"), blocks=1, hidden=128, heads=4, context_len=64)


class TestCacheKeys:
    def test_key_is_deterministic(self):
        assert BatchJob(TINY, "virgo").key() == BatchJob(TINY, "virgo").key()

    def test_key_depends_on_design_and_flags(self):
        base = BatchJob(TINY, "virgo")
        assert base.key() != BatchJob(TINY, "ampere").key()
        assert base.key() != BatchJob(TINY, "virgo", heterogeneous=True).key()

    def test_key_depends_on_spec_content(self):
        other = scaled_spec(TINY, context_len=128)
        assert BatchJob(TINY, "virgo").key() != BatchJob(other, "virgo").key()

    def test_name_and_spec_spellings_share_a_key(self):
        by_name = BatchJob("gpt-decode", "virgo")
        by_spec = BatchJob(resolve_spec("gpt-decode"), "virgo")
        assert by_name.key() == by_spec.key()


class TestResultCache:
    def test_missing_entry_is_none(self, tmp_path):
        assert ResultCache(tmp_path).get("deadbeef") is None

    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"total_cycles": 42})
        assert cache.get("k") == {"total_cycles": 42}
        assert len(cache) == 1

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("bad").write_text("{not json", encoding="utf-8")
        assert cache.get("bad") is None


class TestRunBatch:
    def test_second_run_hits_cache_without_recomputation(self, tmp_path, monkeypatch):
        jobs = [BatchJob(TINY, "virgo"), BatchJob(TINY, "ampere")]

        first = run_batch(jobs, cache_dir=tmp_path, max_workers=1)
        assert first.computed == 2 and first.cached == 0

        # Any recomputation on the second run would call the worker; poison it.
        def explode(job):
            raise AssertionError(f"job {job.label} recomputed despite warm cache")

        monkeypatch.setattr(batch_module, "_execute_job", explode)
        second = run_batch(jobs, cache_dir=tmp_path, max_workers=1)
        assert second.computed == 0 and second.cached == 2
        assert [o.result for o in second.outcomes] == [o.result for o in first.outcomes]

    def test_results_match_direct_run(self, tmp_path):
        job = BatchJob(TINY, "virgo")
        report = run_batch([job], cache_dir=tmp_path, max_workers=1)
        direct = batch_module.run_model(TINY, "virgo").to_dict()
        assert report.outcomes[0].result == direct

    def test_no_cache_dir_disables_caching(self):
        report = run_batch([BatchJob(TINY, "virgo")], cache_dir=None, max_workers=1)
        assert report.computed == 1
        report_again = run_batch([BatchJob(TINY, "virgo")], cache_dir=None, max_workers=1)
        assert report_again.computed == 1

    def test_spec_change_invalidates_only_affected_entries(self, tmp_path):
        job_a = BatchJob(TINY, "virgo")
        run_batch([job_a], cache_dir=tmp_path, max_workers=1)
        job_b = BatchJob(scaled_spec(TINY, context_len=128), "virgo")
        report = run_batch([job_a, job_b], cache_dir=tmp_path, max_workers=1)
        assert report.cached == 1 and report.computed == 1

    def test_process_pool_path(self, tmp_path):
        """Misses fan out over worker processes and still land in the cache."""
        jobs = [BatchJob(TINY, "virgo"), BatchJob(TINY, "ampere")]
        report = run_batch(jobs, cache_dir=tmp_path, max_workers=2)
        assert report.computed == 2
        assert len(ResultCache(tmp_path)) == 2
        for outcome in report.outcomes:
            json.dumps(outcome.result)

    def test_cached_entries_are_canonical_json_files(self, tmp_path):
        job = BatchJob(TINY, "virgo")
        run_batch([job], cache_dir=tmp_path, max_workers=1)
        path = ResultCache(tmp_path).path_for(job.key())
        assert path.exists()
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["kind"] == "model"
        assert on_disk["design"] == "Virgo"


class TestSweepJobs:
    def test_cross_product(self):
        jobs = sweep_jobs(["gpt-prefill", "gpt-decode"], ["virgo", "ampere"])
        assert len(jobs) == 4
        assert {job.label for job in jobs} == {
            "gpt-prefill@virgo",
            "gpt-prefill@ampere",
            "gpt-decode@virgo",
            "gpt-decode@ampere",
        }

    def test_unknown_model_fails_at_key_time(self):
        with pytest.raises(KeyError):
            BatchJob("not-a-model", "virgo").key()

    def test_heterogeneous_sequence_crosses_into_jobs(self):
        jobs = sweep_jobs(["gpt-decode"], ["virgo"], heterogeneous=(False, True))
        assert len(jobs) == 2
        assert [job.heterogeneous for job in jobs] == [False, True]
        assert {job.label for job in jobs} == {"gpt-decode@virgo", "gpt-decode@virgo+hetero"}

    def test_heterogeneous_bool_keeps_single_flag(self):
        jobs = sweep_jobs(["gpt-decode"], ["virgo"], heterogeneous=True)
        assert [job.heterogeneous for job in jobs] == [True]


class TestSpecResolution:
    def test_spec_resolved_once_per_job(self, monkeypatch):
        calls = []
        real = batch_module.resolve_spec

        def counting(name):
            calls.append(name)
            return real(name)

        monkeypatch.setattr(batch_module, "resolve_spec", counting)
        job = BatchJob("gpt-decode", "virgo")
        job.key()
        job.key()
        assert job.spec is job.spec
        assert calls == ["gpt-decode"]

    def test_explicit_spec_never_resolves(self, monkeypatch):
        monkeypatch.setattr(
            batch_module, "resolve_spec", lambda name: pytest.fail("resolved a ModelSpec job")
        )
        assert BatchJob(TINY, "virgo").spec is TINY


class TestWorkerCacheSeeding:
    def test_seed_worker_cache_loads_entries(self):
        from repro.perf import timing_cache
        from repro.runner import run_gemm
        from repro.config.presets import DesignKind

        timing_cache().clear()
        try:
            run_gemm(DesignKind.VIRGO, 128)
            snapshot = timing_cache().snapshot()
            assert snapshot
            timing_cache().clear()
            batch_module._seed_worker_cache(snapshot)
            assert len(timing_cache()) == len(snapshot)
            # A seeded lookup is a hit, not a recomputation.
            run_gemm(DesignKind.VIRGO, 128)
            assert timing_cache().hits == 1 and timing_cache().misses == 0
        finally:
            timing_cache().clear()

    def test_snapshot_is_picklable_for_pool_initargs(self):
        import pickle

        from repro.perf import timing_cache
        from repro.runner import run_flash_attention, run_gemm
        from repro.config.presets import DesignKind

        timing_cache().clear()
        try:
            run_gemm(DesignKind.VIRGO, 128)
            run_flash_attention(DesignKind.VIRGO)
            restored = pickle.loads(pickle.dumps(timing_cache().snapshot()))
            assert len(restored) == 2
        finally:
            timing_cache().clear()
