"""Tests for the ``repro.perf`` timing cache and its integration points.

The core contract: memoization must be invisible in the results.  A model
run against a cold cache, a warm cache or a disabled cache produces the
same canonical ``to_dict()`` encoding for every zoo model x design x dtype
combination; the cache only changes how often the kernel timing models run.
"""

import pytest

from repro.config.presets import DesignKind, make_design
from repro.config.soc import DataType
from repro.kernels.flash_attention import FlashAttentionWorkload
from repro.kernels.gemm import GemmWorkload
from repro.perf import (
    SCHEMA_VERSION,
    TimingCache,
    cache_disabled,
    canonical_value,
    design_fingerprint,
    timing_cache,
)
from repro.runner import run_flash_attention, run_gemm
from repro.workloads import model_names, run_model
from repro.workloads.lowering import _simt_cost


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts and ends with an empty global cache."""
    timing_cache().clear()
    yield
    timing_cache().clear()


class TestCacheEquivalence:
    @pytest.mark.parametrize("model", model_names())
    @pytest.mark.parametrize("design", ["volta", "ampere", "hopper", "virgo"])
    @pytest.mark.parametrize("dtype", [DataType.FP16, DataType.FP32], ids=lambda d: d.value)
    def test_memoized_equals_cold_for_zoo(self, model, design, dtype):
        with cache_disabled():
            cold = run_model(model, design, dtype=dtype).to_dict()
        first = run_model(model, design, dtype=dtype).to_dict()
        warm = run_model(model, design, dtype=dtype).to_dict()
        assert first == cold
        assert warm == cold

    def test_heterogeneous_memoized_equals_cold(self):
        with cache_disabled():
            cold = run_model("gpt-decode", "virgo", heterogeneous=True).to_dict()
        run_model("gpt-decode", "virgo", heterogeneous=True)
        warm = run_model("gpt-decode", "virgo", heterogeneous=True).to_dict()
        assert warm == cold

    def test_second_run_is_all_hits(self):
        first = run_model("gpt-prefill", "virgo")
        assert first.timing_cache["misses"] > 0
        # Layers repeat shapes, so even the first run hits within itself.
        assert first.timing_cache["hits"] > 0
        second = run_model("gpt-prefill", "virgo")
        assert second.timing_cache["misses"] == 0
        assert second.timing_cache["hits"] == (
            first.timing_cache["hits"] + first.timing_cache["misses"]
        )

    def test_distinct_shapes_simulated_once_per_process(self):
        result = run_model("gpt-prefill", "virgo")
        assert result.timing_cache["misses"] == len(timing_cache())
        assert result.kernel_count == (
            result.timing_cache["hits"] + result.timing_cache["misses"]
        )


class TestRunnerMemoization:
    def test_run_gemm_returns_shared_result(self):
        first = run_gemm(DesignKind.VIRGO, 256)
        second = run_gemm(DesignKind.VIRGO, 256)
        assert second is first
        assert timing_cache().hits == 1

    def test_run_gemm_distinguishes_design_workload_dtype(self):
        run_gemm(DesignKind.VIRGO, 256)
        run_gemm(DesignKind.AMPERE, 256)
        run_gemm(DesignKind.VIRGO, 512)
        run_gemm(DesignKind.VIRGO, 256, DataType.FP32)
        assert timing_cache().misses == 4
        assert timing_cache().hits == 0

    def test_run_gemm_workload_and_size_spellings_share_entry(self):
        by_size = run_gemm(DesignKind.VIRGO, 256)
        by_workload = run_gemm(DesignKind.VIRGO, GemmWorkload.square(256))
        assert by_workload is by_size

    def test_run_flash_attention_memoizes(self):
        first = run_flash_attention(DesignKind.VIRGO)
        second = run_flash_attention(DesignKind.VIRGO, FlashAttentionWorkload())
        assert second is first
        third = run_flash_attention(DesignKind.VIRGO, FlashAttentionWorkload(seq_len=512))
        assert third is not first

    def test_flash_kind_and_config_spellings_share_entry(self):
        by_kind = run_flash_attention(DesignKind.AMPERE)
        by_config = run_flash_attention(make_design(DesignKind.AMPERE, DataType.FP32))
        assert by_config is by_kind

    def test_simt_cost_memoizes(self):
        design = make_design(DesignKind.VIRGO, DataType.FP16)
        first = _simt_cost(design, 4096, 8.0)
        second = _simt_cost(design, 4096, 8.0)
        assert second is first
        assert _simt_cost(design, 4096, 4.0) is not first

    def test_disabled_cache_stores_nothing(self):
        with cache_disabled():
            run_gemm(DesignKind.VIRGO, 256)
        assert len(timing_cache()) == 0
        assert timing_cache().stats() == {"hits": 0, "misses": 0, "entries": 0}


class TestTimingCacheMechanics:
    def test_snapshot_seeds_another_cache(self):
        run_gemm(DesignKind.VIRGO, 256)
        snapshot = timing_cache().snapshot()
        assert snapshot["schema"] == SCHEMA_VERSION
        other = TimingCache()
        assert other.load(snapshot) == len(timing_cache())
        assert len(other) == len(timing_cache())
        key = next(iter(snapshot["entries"]))
        assert key in other

    def test_load_orphans_stale_schema_snapshots(self):
        """A snapshot stamped with a different schema (or container format)
        is skipped wholesale -- stale timing entries must never satisfy
        fresh lookups, mirroring the batch-cache schema-bump behaviour."""
        run_gemm(DesignKind.VIRGO, 256)
        snapshot = timing_cache().snapshot()

        stale_schema = dict(snapshot, schema=SCHEMA_VERSION + 1)
        other = TimingCache()
        assert other.load(stale_schema) == 0
        assert len(other) == 0

        stale_format = dict(snapshot, format=-1)
        assert other.load(stale_format) == 0
        assert len(other) == 0

        # The untouched snapshot still loads, proving the guard (not the
        # payload) rejected the stale variants.
        assert other.load(snapshot) == len(snapshot["entries"])

    def test_load_accepts_legacy_bare_mapping(self):
        """Pre-versioned snapshots (bare key->entry mappings, as still used
        for same-process seeding in older call sites) keep working."""
        run_gemm(DesignKind.VIRGO, 256)
        entries = timing_cache().snapshot()["entries"]
        other = TimingCache()
        assert other.load(entries) == len(entries)
        assert len(other) == len(entries)

    def test_namespace_rides_snapshot_and_clear(self):
        """Auxiliary memo tables share the cache lifecycle: cleared with it,
        carried by snapshots, schema-gated on load."""
        cache = TimingCache()
        table = cache.namespace("aux.memo")
        table[("key", 1)] = {"value": 42}
        assert cache.namespace("aux.memo") is table

        snapshot = cache.snapshot()
        other = TimingCache()
        other.load(snapshot)
        assert other.namespace("aux.memo") == {("key", 1): {"value": 42}}

        stale = dict(snapshot, schema=SCHEMA_VERSION + 1)
        third = TimingCache()
        third.load(stale)
        assert third.namespace("aux.memo") == {}

        cache.clear()
        assert table == {}  # cleared in place: held references empty too
        assert cache.namespace("aux.memo") is table

    def test_credit_hits_adjusts_counters_only_when_enabled(self):
        cache = TimingCache()
        cache.credit_hits(3)
        assert cache.hits == 3
        cache.credit_hits(0)
        assert cache.hits == 3
        cache.enabled = False
        cache.credit_hits(5)
        assert cache.hits == 3

    def test_clear_bumps_generation(self):
        cache = TimingCache()
        generation = cache.generation
        cache.clear()
        assert cache.generation == generation + 1

    def test_clear_resets_stats_and_entries(self):
        run_gemm(DesignKind.VIRGO, 256)
        run_gemm(DesignKind.VIRGO, 256)
        cache = timing_cache()
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_design_fingerprint_tracks_content(self):
        fp16 = make_design(DesignKind.VIRGO, DataType.FP16)
        fp16_again = make_design(DesignKind.VIRGO, DataType.FP16)
        fp32 = make_design(DesignKind.VIRGO, DataType.FP32)
        assert design_fingerprint(fp16) == design_fingerprint(fp16_again)
        assert design_fingerprint(fp16) != design_fingerprint(fp32)

    def test_canonical_value_handles_nested_dataclasses_and_enums(self):
        workload = GemmWorkload(m=8, n=16, k=32, dtype=DataType.FP32)
        assert canonical_value(workload) == {"m": 8, "n": 16, "k": 32, "dtype": "fp32"}
        assert canonical_value({"w": (workload,)}) == {
            "w": [{"m": 8, "n": 16, "k": 32, "dtype": "fp32"}]
        }

    def test_key_is_deterministic_and_content_sensitive(self):
        cache = timing_cache()
        design = make_design(DesignKind.VIRGO, DataType.FP16)
        key = cache.key("gemm", design, {"workload": GemmWorkload.square(64)})
        assert key == cache.key("gemm", design, {"workload": GemmWorkload.square(64)})
        assert key != cache.key("flash", design, {"workload": GemmWorkload.square(64)})
        assert key != cache.key("gemm", design, {"workload": GemmWorkload.square(65)})


class TestConcurrentMisses:
    def test_racing_computes_converge_on_one_shared_entry(self):
        """Losers of a compute race return the stored winner, not their own copy."""
        cache = TimingCache()
        key = "same-key"
        first = cache.get_or_compute(key, lambda: object())
        # Simulate the race's loser: entry already present when it re-locks.
        second = cache.get_or_compute(key, lambda: object())
        assert second is first
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_threaded_lookups_share_one_object(self):
        import threading

        cache = TimingCache()
        results = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            results.append(cache.get_or_compute("k", lambda: object()))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) == 1
        assert all(result is results[0] for result in results)
        assert cache.hits + cache.misses == 4
