"""Tests for the GEMM kernel internals: instruction streams, iteration structure,
per-design kernel classes and their scheduling behaviour."""

import pytest

from repro.config.presets import DesignKind, make_design
from repro.isa.instructions import OpClass
from repro.kernels.gemm import (
    GemmWorkload,
    OperandDecoupledGemmKernel,
    TightlyCoupledGemmKernel,
    VirgoGemmKernel,
    kernel_for_design,
)
from repro.kernels.gemm.instruction_streams import (
    hopper_iteration_streams,
    virgo_iteration_streams,
    volta_iteration_streams,
)
from repro.kernels.gemm.tiling import tiling_for_design
from repro.tensorcore.hopper import HopperTensorCore
from repro.tensorcore.volta import VoltaTensorCore


@pytest.fixture
def workload():
    return GemmWorkload.square(512)


class TestVoltaStreams:
    def _streams(self, design, workload, include_copy):
        tiling = tiling_for_design(design, workload)
        tensor_core = VoltaTensorCore(design.matrix_unit)
        return volta_iteration_streams(design, tiling, tensor_core, include_copy=include_copy)

    def test_copy_loop_only_without_dma(self, volta_design, ampere_design, workload):
        volta = self._streams(volta_design, workload, include_copy=True)
        ampere = self._streams(ampere_design, workload, include_copy=False)
        volta_classes = volta.compute_warp.count_by_class()
        ampere_classes = ampere.compute_warp.count_by_class()
        assert volta_classes.get(OpClass.LOAD_GLOBAL, 0) > 0
        assert ampere_classes.get(OpClass.LOAD_GLOBAL, 0) == 0

    def test_ampere_leader_programs_dma(self, ampere_design, workload):
        streams = self._streams(ampere_design, workload, include_copy=False)
        leader_classes = streams.leader_extra.count_by_class()
        assert leader_classes.get(OpClass.DMA_PROGRAM, 0) > 0

    def test_hmma_instructions_present(self, volta_design, workload):
        streams = self._streams(volta_design, workload, include_copy=True)
        classes = streams.compute_warp.count_by_class()
        # Two tile ops per warp, 16 steps each.
        assert classes[OpClass.HMMA_STEP] == 2 * 16
        assert classes[OpClass.HMMA_SET] == 2 * 4

    def test_barrier_terminates_iteration(self, volta_design, workload):
        streams = self._streams(volta_design, workload, include_copy=True)
        assert streams.compute_warp.instructions[-1].op_class is OpClass.VX_BAR

    def test_tile_ops_cover_cluster_share(self, volta_design, workload):
        tiling = tiling_for_design(volta_design, workload)
        streams = self._streams(volta_design, workload, include_copy=True)
        cluster_tile_ops = tiling.macs_per_iteration // volta_design.matrix_unit.tile_macs
        assert streams.tile_ops_per_core * volta_design.cluster.cores == cluster_tile_ops


class TestHopperStreams:
    def test_two_instructions_per_tile_op(self, hopper_design, workload):
        tiling = tiling_for_design(hopper_design, workload)
        unit = HopperTensorCore(hopper_design.matrix_unit, hopper_design.cluster.shared_memory)
        streams = hopper_iteration_streams(hopper_design, tiling, unit)
        classes = streams.compute_warp.count_by_class()
        assert classes[OpClass.WGMMA_INIT] == classes[OpClass.WGMMA_WAIT]
        assert classes.get(OpClass.LOAD_SHARED, 0) == 0  # operands come from SMEM directly

    def test_far_fewer_instructions_than_volta(self, volta_design, hopper_design, workload):
        volta_tiling = tiling_for_design(volta_design, workload)
        hopper_tiling = tiling_for_design(hopper_design, workload)
        volta_streams = volta_iteration_streams(
            volta_design, volta_tiling, VoltaTensorCore(volta_design.matrix_unit), True
        )
        hopper_streams = hopper_iteration_streams(
            hopper_design,
            hopper_tiling,
            HopperTensorCore(hopper_design.matrix_unit, hopper_design.cluster.shared_memory),
        )
        # Normalize by the MACs each iteration covers.
        volta_per_mac = (
            volta_streams.instructions_per_core()
            * volta_design.cluster.cores
            / volta_tiling.macs_per_iteration
        )
        hopper_per_mac = (
            hopper_streams.instructions_per_core()
            * hopper_design.cluster.cores
            / hopper_tiling.macs_per_iteration
        )
        assert hopper_per_mac < volta_per_mac / 5


class TestVirgoStreams:
    def test_leader_drives_mmio_and_dma(self, virgo_design, workload):
        tiling = tiling_for_design(virgo_design, workload)
        streams = virgo_iteration_streams(virgo_design, tiling)
        leader = streams.leader_extra.count_by_class()
        assert leader[OpClass.MMIO_STORE] >= 6
        assert leader[OpClass.DMA_PROGRAM] >= 4
        assert leader[OpClass.MMIO_POLL] >= 1

    def test_workers_only_synchronize(self, virgo_design, workload):
        tiling = tiling_for_design(virgo_design, workload)
        streams = virgo_iteration_streams(virgo_design, tiling)
        worker = streams.compute_warp.count_by_class()
        assert worker[OpClass.VX_BAR] == 1
        assert OpClass.HMMA_STEP not in worker
        assert OpClass.LOAD_SHARED not in worker


class TestKernelDispatch:
    def test_kernel_for_design(self):
        assert isinstance(
            kernel_for_design(make_design(DesignKind.VOLTA)), TightlyCoupledGemmKernel
        )
        assert isinstance(
            kernel_for_design(make_design(DesignKind.AMPERE)), TightlyCoupledGemmKernel
        )
        assert isinstance(
            kernel_for_design(make_design(DesignKind.HOPPER)), OperandDecoupledGemmKernel
        )
        assert isinstance(kernel_for_design(make_design(DesignKind.VIRGO)), VirgoGemmKernel)

    def test_wrong_design_rejected(self):
        with pytest.raises(ValueError):
            VirgoGemmKernel(make_design(DesignKind.VOLTA))
        with pytest.raises(ValueError):
            OperandDecoupledGemmKernel(make_design(DesignKind.VIRGO))
        with pytest.raises(ValueError):
            TightlyCoupledGemmKernel(make_design(DesignKind.HOPPER))


class TestSchedulingBehaviour:
    def test_ampere_overlaps_dma_with_compute(self):
        """With identical compute streams, the DMA-equipped design finishes sooner."""
        volta = TightlyCoupledGemmKernel(make_design(DesignKind.VOLTA)).simulate(
            GemmWorkload.square(256)
        )
        ampere = TightlyCoupledGemmKernel(make_design(DesignKind.AMPERE)).simulate(
            GemmWorkload.square(256)
        )
        assert ampere.total_cycles < volta.total_cycles

    def test_phase_cycles_reported(self):
        result = VirgoGemmKernel(make_design(DesignKind.VIRGO)).simulate(GemmWorkload.square(256))
        assert set(result.phase_cycles) >= {"dma", "compute", "epilogue"}
        assert result.phase_cycles["compute"] > result.phase_cycles["epilogue"]

    def test_virgo_dma_fully_hidden(self):
        """In steady state the DMA stream is shorter than the compute stream."""
        result = VirgoGemmKernel(make_design(DesignKind.VIRGO)).simulate(GemmWorkload.square(1024))
        assert result.phase_cycles["dma"] < result.phase_cycles["compute"]

    def test_iteration_cycles_exposed(self):
        result = OperandDecoupledGemmKernel(make_design(DesignKind.HOPPER)).simulate(
            GemmWorkload.square(256)
        )
        assert result.iteration_cycles > 0
        assert result.total_cycles >= result.iteration_cycles
