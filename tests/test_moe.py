"""Tests for the mixture-of-experts workloads: IR, lowering, dual-unit overlap."""

import json
import re

import pytest

from repro.analysis.model_breakdown import format_overlap_report, model_overlap_report
from repro.config.presets import DesignKind
from repro.workloads import (
    MoeBlock,
    MoeFfnLayer,
    TensorShape,
    build_model,
    lower_graph,
    moe_sweep_jobs,
    resolve_spec,
    run_model,
    scaled_spec,
)
from repro.workloads.graph import LayerGraph
from repro.workloads.lowering import (
    MATRIX_RESOURCE,
    SIMT_RESOURCE,
    SMALL_MATRIX_RESOURCE,
    execute_schedule,
)
from repro.workloads.models import ModelSpec

#: Kernel names of one expert chain look like "block0.moe.e3.up".
EXPERT_TAG = re.compile(r"\.([es]\d+)\.")


def expert_tag(kernel_name: str) -> str:
    match = EXPERT_TAG.search(kernel_name)
    return match.group(1) if match else ""


class TestMoeIR:
    def layer(self, **overrides) -> MoeFfnLayer:
        params = dict(name="moe", in_features=512, expert_hidden=2048,
                      experts=8, top_k=2)
        params.update(overrides)
        return MoeFfnLayer(**params)

    def test_prefill_capacity_and_active_experts(self):
        shape = TensorShape(batch=1, seq=256, features=512)
        layer = self.layer()
        assert layer.active_experts(shape) == 8
        assert layer.expert_capacity(shape) == 256 * 2 // 8

    def test_decode_undershoots_expert_count(self):
        shape = TensorShape(batch=1, seq=1, features=512)
        layer = self.layer(top_k=2)
        assert layer.active_experts(shape) == 2  # only top_k assignments exist
        assert layer.expert_capacity(shape) == 1

    def test_capacity_factor_pads_capacity(self):
        shape = TensorShape(batch=1, seq=256, features=512)
        relaxed = self.layer(capacity_factor=1.5)
        assert relaxed.expert_capacity(shape) == 96  # ceil(256*2*1.5/8)

    def test_validation(self):
        with pytest.raises(ValueError, match="top_k"):
            self.layer(top_k=9)
        with pytest.raises(ValueError, match="capacity"):
            self.layer(capacity_factor=0.0)
        with pytest.raises(ValueError, match="feature"):
            self.layer(in_features=0)
        with pytest.raises(ValueError, match="positive expert count"):
            ModelSpec(family="moe", experts=0)

    def test_expert_macs_count_both_projections(self):
        shape = TensorShape(batch=1, seq=256, features=512)
        layer = self.layer()
        capacity = layer.expert_capacity(shape)
        expected = 8 * 2 * capacity * 512 * 2048
        assert layer.expert_macs(shape) == expected

    def test_shared_experts_add_full_token_macs(self):
        shape = TensorShape(batch=1, seq=256, features=512)
        routed = self.layer()
        block = MoeBlock(name="moe", in_features=512, expert_hidden=2048,
                         experts=8, top_k=2, shared_experts=1)
        assert block.expert_macs(shape) == (
            routed.expert_macs(shape) + 2 * 256 * 512 * 2048
        )

    def test_graph_total_macs_includes_moe(self):
        graph = LayerGraph("moe", TensorShape(batch=1, seq=64, features=512))
        layer = graph.add(self.layer())
        assert graph.total_macs() == layer.expert_macs(graph.input_shape)


class TestMoeLowering:
    def test_zoo_moe_entries_build_and_lower(self):
        for name in ("moe-prefill", "moe-decode", "moe-decode-16x2",
                     "moe-decode-top1", "moe-prefill-cap15", "moe-shared-decode"):
            schedule = lower_graph(build_model(name), DesignKind.VIRGO)
            assert any(".router" in inv.name for inv in schedule.invocations)

    def test_no_cross_expert_edges(self):
        schedule = lower_graph(build_model("moe-decode"), DesignKind.VIRGO)
        by_name = {inv.name: inv for inv in schedule.invocations}
        for inv in schedule.invocations:
            tag = expert_tag(inv.name)
            if not tag:
                continue
            for dep in inv.deps:
                dep_tag = expert_tag(dep)
                assert dep_tag in ("", tag), (
                    f"{inv.name} depends on another expert's kernel {dep}"
                )
                # Non-expert dependencies are the dispatch/router prologue.
                if not dep_tag:
                    assert by_name[dep].kind == "simt"

    def test_fanout_matches_active_expert_count(self):
        schedule = lower_graph(build_model("moe-decode"), DesignKind.VIRGO)
        ups = [inv for inv in schedule.invocations if inv.name.endswith(".up")]
        spec = resolve_spec("moe-decode")
        # batch 4 x top_k 2 assignments cover all 8 experts, twice (2 blocks).
        assert len(ups) == spec.blocks * spec.experts
        for inv in ups:
            assert inv.workload.m == 1  # capacity-bound decode GEMMs

    def test_router_and_combine_are_simt(self):
        schedule = lower_graph(build_model("moe-prefill"), DesignKind.VIRGO)
        router = next(inv for inv in schedule.invocations if inv.name.endswith(".router"))
        combine = next(inv for inv in schedule.invocations if inv.name.endswith(".combine"))
        assert router.resource == SIMT_RESOURCE and router.kind == "simt"
        assert combine.resource == SIMT_RESOURCE
        # The combine joins every expert chain of its layer.
        tags = {expert_tag(dep) for dep in combine.deps}
        assert len(tags) == resolve_spec("moe-prefill").experts

    def test_heterogeneous_spreads_experts_across_units(self):
        schedule = lower_graph(
            build_model("moe-decode"), DesignKind.VIRGO, heterogeneous=True
        )
        expert_resources = {
            inv.resource
            for inv in schedule.invocations
            if inv.kind == "gemm" and expert_tag(inv.name)
        }
        assert expert_resources == {MATRIX_RESOURCE, SMALL_MATRIX_RESOURCE}
        # Up and down projections of one expert stay on the same unit.
        by_chain = {}
        for inv in schedule.invocations:
            tag = expert_tag(inv.name)
            if tag and inv.kind == "gemm":
                by_chain.setdefault((inv.layer, tag), set()).add(inv.resource)
        assert all(len(resources) == 1 for resources in by_chain.values())

    def test_shared_experts_skip_the_router(self):
        schedule = lower_graph(build_model("moe-shared-decode"), DesignKind.VIRGO)
        shared_ups = [
            inv for inv in schedule.invocations
            if inv.name.endswith(".up") and expert_tag(inv.name).startswith("s")
        ]
        assert shared_ups
        for inv in shared_ups:
            assert all(".router" not in dep and ".dispatch" not in dep for dep in inv.deps)

    def test_moe_runs_on_every_design(self):
        spec = scaled_spec(resolve_spec("moe-decode"), blocks=1, context_len=256)
        for kind in DesignKind:
            assert run_model(spec, kind).total_cycles > 0


class TestMoeOverlap:
    def test_dual_unit_overlap_on_heterogeneous_design(self):
        """Acceptance: makespan strictly below the serialized sum of kernel
        times, with both matrix units measurably occupied."""
        result = run_model("moe-decode", DesignKind.VIRGO, heterogeneous=True)
        serialized = sum(layer.cycles for layer in result.layers)
        assert result.total_cycles < serialized
        assert result.resource_busy[MATRIX_RESOURCE] > 0
        assert result.resource_busy[SMALL_MATRIX_RESOURCE] > 0
        report = model_overlap_report(result)
        assert report["overlap_cycles_saved"] > 0
        assert report["overlap_speedup"] > 1.0
        occupancy = report["unit_occupancy_percent"]
        assert occupancy[MATRIX_RESOURCE] > 0
        assert occupancy[SMALL_MATRIX_RESOURCE] > 0
        assert report["moe_layers"], "expert fan-out must be surfaced"
        assert all(entry["experts"] == 8 for entry in report["moe_layers"])

    def test_overlap_without_second_matrix_unit(self):
        # Expert activations (SIMT) overlap the next expert's GEMMs even on
        # the single-unit configuration.
        result = run_model("moe-decode", DesignKind.VIRGO)
        assert result.total_cycles < sum(layer.cycles for layer in result.layers)

    def test_heterogeneous_beats_single_unit_on_moe_decode(self):
        single = run_model("moe-decode", DesignKind.VIRGO)
        dual = run_model("moe-decode", DesignKind.VIRGO, heterogeneous=True)
        assert dual.total_cycles < single.total_cycles

    def test_expert_gemms_share_timing_cache_entries(self):
        result = run_model("moe-decode-16x2", DesignKind.VIRGO)
        stats = result.timing_cache
        # 16 identical expert pairs per block: nearly everything hits.
        assert stats["hits"] > stats["misses"]

    def test_moe_result_to_dict_round_trips_json(self):
        result = run_model("moe-decode", DesignKind.VIRGO, heterogeneous=True)
        decoded = json.loads(json.dumps(result.to_dict(), sort_keys=True))
        assert decoded["total_cycles"] == result.total_cycles
        assert decoded["heterogeneous"] is True
        assert len(decoded["layers"]) == len(result.layers)
        moe_layers = [l for l in decoded["layers"] if l["layer"].endswith(".moe")]
        assert moe_layers and all("gemm" in l["kinds"] for l in moe_layers)

    def test_formatted_report_mentions_both_units(self):
        result = run_model("moe-decode", DesignKind.VIRGO, heterogeneous=True)
        text = format_overlap_report(result)
        assert "unit occupancy" in text
        assert MATRIX_RESOURCE in text and SMALL_MATRIX_RESOURCE in text
        assert "expert chains" in text

    def test_prefill_overlap_with_capacity_factor(self):
        base = execute_schedule(
            lower_graph(build_model("moe-prefill"), DesignKind.VIRGO)
        )
        padded = execute_schedule(
            lower_graph(build_model("moe-prefill-cap15"), DesignKind.VIRGO)
        )
        # Padding tokens to 1.5x capacity does strictly more work.
        assert padded.total_cycles > base.total_cycles


class TestMoeSweeps:
    def test_moe_sweep_crosses_all_knobs(self):
        jobs = moe_sweep_jobs(
            experts=(4, 8), top_ks=(1, 2), designs=("virgo",),
            capacity_factors=(1.0, 1.5), heterogeneous=(False, True),
        )
        assert len(jobs) == 2 * 2 * 2 * 2
        assert len({job.key() for job in jobs}) == len(jobs)

    def test_moe_sweep_skips_infeasible_cells(self):
        jobs = moe_sweep_jobs(experts=(1, 8), top_ks=(2,), heterogeneous=False)
        assert all(job.spec.top_k <= job.spec.experts for job in jobs)
        assert {job.spec.experts for job in jobs} == {8}

    def test_moe_sweep_rejects_dense_base(self):
        with pytest.raises(ValueError, match="family='moe'"):
            moe_sweep_jobs(base="gpt-prefill")

    def test_moe_sweep_labels_distinguish_cells(self):
        jobs = moe_sweep_jobs(
            experts=(4, 8), top_ks=(1, 2), capacity_factors=(1.0, 1.5),
            heterogeneous=(False, True),
        )
        labels = [job.label for job in jobs]
        assert len(set(labels)) == len(labels)

    def test_moe_cli_breakdown(self, capsys):
        from repro.__main__ import main

        assert main([
            "model", "--name", "moe-decode", "--design", "virgo",
            "--hetero", "--moe-breakdown",
        ]) == 0
        out = capsys.readouterr().out
        assert "overlap: makespan" in out
        assert "unit occupancy" in out
        assert "matrix.small" in out
        makespan, serialized = re.search(
            r"makespan ([\d,]+) vs serialized ([\d,]+)", out
        ).groups()
        assert int(makespan.replace(",", "")) < int(serialized.replace(",", ""))
