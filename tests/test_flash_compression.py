"""Flash-attention steady-state compression must be bit-identical to full expansion.

Mirror of ``tests/test_schedule_compression.py`` for the fused attention
kernels: the (Q tile, KV tile) software pipeline now schedules through
``repro.kernels.gemm.schedule_loops.execute_flash_loop``, which either
materializes every pipe/sync/prologue/epilogue operation on the taskgraph
(``full_expansion=True``) or executes warm-up plus one steady-state period
on the max-plus engine and extrapolates the rest.  The compressed path is
the default and must agree with the expanded oracle exactly -- cycles,
per-phase cycles and the serialized ``to_dict()`` encoding -- across both
evaluated designs, including the golden configuration pinned under
``tests/goldens/``.
"""

import json

import pytest

from differential import assert_byte_identical

from repro.config.presets import DesignKind
from repro.kernels.flash_attention import (
    FlashAttentionWorkload,
    simulate_flash_attention,
)
from repro.kernels.gemm.schedule_loops import (
    FlashLoopSpec,
    FlashPipe,
    execute_flash_loop,
)
from repro.runner import run_flash_attention

FLASH_DESIGNS = [DesignKind.VIRGO, DesignKind.AMPERE]

#: The golden config (the paper's seq 1024 / head dim 64 default) plus the
#: corners: short sequences below one Q tile, non-divisible tile edges,
#: multi-head batches and the long-sequence regime compression targets.
WORKLOADS = [
    FlashAttentionWorkload(),  # tests/goldens/flash_virgo_default.json
    FlashAttentionWorkload(seq_len=32),
    FlashAttentionWorkload(seq_len=192, block_q=64, block_kv=64),
    FlashAttentionWorkload(seq_len=512, head_dim=128),
    FlashAttentionWorkload(seq_len=1000, block_q=96, block_kv=80),
    FlashAttentionWorkload(seq_len=2048, heads=8),
    FlashAttentionWorkload(seq_len=8192),
]


def _workload_id(workload: FlashAttentionWorkload) -> str:
    return f"s{workload.seq_len}d{workload.head_dim}h{workload.heads}"


class TestCompressedEqualsExpanded:
    @pytest.mark.parametrize("design", FLASH_DESIGNS, ids=lambda kind: kind.value)
    @pytest.mark.parametrize("workload", WORKLOADS, ids=_workload_id)
    def test_bit_identical_results(self, design, workload):
        compressed = simulate_flash_attention(design, workload)
        expanded = simulate_flash_attention(design, workload, full_expansion=True)
        assert compressed.total_cycles == expanded.total_cycles
        assert compressed.phase_cycles == expanded.phase_cycles
        assert compressed.ideal_mac_cycles == expanded.ideal_mac_cycles
        assert compressed.counters.as_dict() == expanded.counters.as_dict()
        # Same coverage, different materialization.
        assert (
            compressed.schedule_stats["operation_count"]
            == expanded.schedule_stats["operation_count"]
        )
        assert expanded.schedule_stats["extrapolated_operations"] == 0

    @pytest.mark.parametrize("design", FLASH_DESIGNS, ids=lambda kind: kind.value)
    def test_golden_config_to_dict_byte_identical(self, design):
        """The serialized encoding of the golden config must not depend on
        which scheduling path produced it."""
        workload = FlashAttentionWorkload()
        compressed = run_flash_attention(design, workload).to_dict()
        expanded_kernel = simulate_flash_attention(
            design, workload, full_expansion=True
        )
        # Rebuild the run encoding around the expanded kernel result.
        assert compressed["total_cycles"] == expanded_kernel.total_cycles
        assert compressed["mac_utilization_percent"] == pytest.approx(
            expanded_kernel.mac_utilization_percent
        )
        assert_byte_identical(
            compressed,
            run_flash_attention(design, workload),
            context="flash run encoding stability",
        )


class TestConstantOperationGraph:
    """The default path must stay O(1) in ``heads x q_tiles x kv_tiles``."""

    @pytest.mark.parametrize("design", FLASH_DESIGNS, ids=lambda kind: kind.value)
    def test_executed_operations_independent_of_sequence_length(self, design):
        small = simulate_flash_attention(design, FlashAttentionWorkload(seq_len=1024))
        large = simulate_flash_attention(design, FlashAttentionWorkload(seq_len=16384))
        assert (
            small.schedule_stats["executed_operations"]
            == large.schedule_stats["executed_operations"]
        )
        assert small.schedule_stats["executed_operations"] < 100
        assert large.schedule_stats["operation_count"] > 100_000
        assert (
            large.schedule_stats["extrapolated_operations"]
            > small.schedule_stats["extrapolated_operations"]
        )


class TestFlashLoopSpec:
    def test_rejects_duplicate_pipe_kinds(self):
        with pytest.raises(ValueError, match="distinct"):
            FlashLoopSpec(
                iterations=4,
                pipes=(
                    FlashPipe(kind="matrix", resource="matrix", cycles=10),
                    FlashPipe(kind="matrix", resource="simt", cycles=5),
                ),
            )

    def test_rejects_empty_pipes(self):
        with pytest.raises(ValueError, match="at least one pipe"):
            FlashLoopSpec(iterations=4, pipes=())

    def test_slowest_pipe_paces_the_loop(self):
        spec = FlashLoopSpec(
            iterations=100,
            pipes=(
                FlashPipe(kind="matrix", resource="matrix", cycles=70),
                FlashPipe(kind="softmax", resource="simt", cycles=30),
            ),
            sync_cycles=5,
            prologue_cycles=11,
            epilogue_cycles=3,
            epilogue_count=4,
        )
        compressed = execute_flash_loop(spec)
        expanded = execute_flash_loop(spec, full_expansion=True)
        assert compressed.total_cycles == expanded.total_cycles
        assert compressed.total_cycles == 11 + 100 * (70 + 5) + 4 * 3
        assert compressed.kind_cycles == expanded.kind_cycles
        assert compressed.resource_busy == expanded.resource_busy
        assert compressed.executed_operations < expanded.executed_operations
