"""Tests for the runner and analysis layers (headline claims, tables, figures)."""

import pytest

from repro import DesignKind, run_all_gemm_designs, run_flash_attention, run_gemm
from repro.analysis.figures import (
    figure7_area_breakdown,
    figure8_power_energy,
    figure9_soc_power_breakdown,
    figure10_core_power_breakdown,
    figure11_matrix_unit_energy,
    figure12_flash_attention,
    gemm_power_reduction,
)
from repro.analysis.tables import (
    format_table,
    table1_scaling_trends,
    table2_hardware_configuration,
    table3_mac_utilization,
    table3_rows,
    table4_smem_footprint,
)


class TestRunner:
    @pytest.fixture(scope="class")
    def runs(self):
        return run_all_gemm_designs(512)

    def test_all_designs_run(self, runs):
        assert set(runs) == set(DesignKind)

    def test_power_and_energy_positive(self, runs):
        for run in runs.values():
            assert run.active_power_mw > 0
            assert run.active_energy_uj > 0

    def test_virgo_power_reduction_vs_ampere(self, runs):
        """Headline: Virgo reduces active power by ~67% vs the Ampere-style design."""
        virgo = runs[DesignKind.VIRGO]
        ampere = runs[DesignKind.AMPERE]
        reduction = 1.0 - virgo.active_power_mw / ampere.active_power_mw
        assert 0.45 <= reduction <= 0.80

    def test_virgo_power_reduction_vs_hopper(self, runs):
        """Headline: ~24% active power reduction vs the Hopper-style design."""
        virgo = runs[DesignKind.VIRGO]
        hopper = runs[DesignKind.HOPPER]
        reduction = 1.0 - virgo.active_power_mw / hopper.active_power_mw
        assert 0.10 <= reduction <= 0.40

    def test_virgo_energy_reduction_vs_ampere(self, runs):
        """Headline: ~80% energy reduction vs the Ampere-style design."""
        virgo = runs[DesignKind.VIRGO]
        ampere = runs[DesignKind.AMPERE]
        reduction = 1.0 - virgo.active_energy_uj / ampere.active_energy_uj
        assert 0.65 <= reduction <= 0.90

    def test_virgo_energy_reduction_vs_hopper(self, runs):
        """Headline: ~32% energy reduction vs the Hopper-style design."""
        virgo = runs[DesignKind.VIRGO]
        hopper = runs[DesignKind.HOPPER]
        reduction = 1.0 - virgo.active_energy_uj / hopper.active_energy_uj
        assert 0.15 <= reduction <= 0.50

    def test_breakdowns_available(self, runs):
        run = runs[DesignKind.VIRGO]
        assert run.soc_breakdown().total_pj > 0
        assert run.core_breakdown().total_pj > 0
        assert run.matrix_unit_breakdown().total_pj > 0

    def test_core_power_reduced_in_virgo(self, runs):
        """Figure 10: the core (issue/RF) power collapses in Virgo."""
        virgo_core = runs[DesignKind.VIRGO].core_breakdown().parts_pj["Core: Issue"]
        ampere_core = runs[DesignKind.AMPERE].core_breakdown().parts_pj["Core: Issue"]
        assert virgo_core < 0.1 * ampere_core

    def test_flash_attention_runner(self):
        virgo = run_flash_attention(DesignKind.VIRGO)
        ampere = run_flash_attention(DesignKind.AMPERE)
        assert virgo.active_energy_uj < ampere.active_energy_uj
        assert virgo.mac_utilization_percent > ampere.mac_utilization_percent

    def test_run_gemm_accepts_design_config(self, virgo_design):
        result = run_gemm(virgo_design, 256)
        assert result.design_name == "Virgo"


class TestTables:
    def test_table1(self):
        table = table1_scaling_trends()
        assert set(table) == {"V100", "A100", "H100"}
        assert table["H100"]["tensor_fp16_tflops_rel"] == pytest.approx(7.9)
        for row in table.values():
            assert 5.0 <= row["occupancy_percent"] <= 25.0

    def test_table2(self):
        table = table2_hardware_configuration()
        assert table["Virgo"]["matrix_units"] == 1
        assert table["Volta-style"]["macs_per_cluster"] == 256
        assert table["Hopper-style"]["cores_per_cluster"] == 4

    def test_table3(self):
        table = table3_mac_utilization(sizes=(256,))
        assert table["Virgo"][256] > table["Volta-style"][256]
        rows = table3_rows(table)
        assert len(rows) == 4

    def test_table4(self):
        table = table4_smem_footprint()
        assert table["Disaggregated"]["normalized"] == pytest.approx(1.0)
        assert table["Tightly-coupled"]["mib"] > table["Operand-decoupled"]["mib"]

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in text and "3" in text
        assert len(text.splitlines()) == 4


class TestFigures:
    def test_figure7(self):
        areas = figure7_area_breakdown()
        assert set(areas) == {"Volta-style", "Hopper-style", "Virgo"}
        assert areas["Virgo"]["Accum Mem"] > 0

    def test_figure8(self):
        data = figure8_power_energy(sizes=(512,))
        assert data[512]["Virgo"]["active_power_mw"] < data[512]["Ampere-style"]["active_power_mw"]

    def test_figure9(self):
        breakdown = figure9_soc_power_breakdown(size=256)
        assert breakdown["Volta-style"]["Vortex Core"] > breakdown["Virgo"]["Vortex Core"]

    def test_figure10(self):
        breakdown = figure10_core_power_breakdown(size=256)
        assert breakdown["Ampere-style"]["Core: Issue"] > breakdown["Virgo"]["Core: Issue"]

    def test_figure11(self):
        breakdown = figure11_matrix_unit_energy(size=256)
        virgo = breakdown["Virgo"]
        ampere = breakdown["Ampere-style"]
        # PE energy is similar across designs (within ~35%), per Section 6.1.2.
        assert virgo["PEs"] == pytest.approx(ampere["PEs"], rel=0.35)

    def test_figure12(self):
        data = figure12_flash_attention()
        assert (
            data["Virgo"]["mac_utilization_percent"]
            > data["Ampere-style"]["mac_utilization_percent"]
        )
        assert data["Virgo"]["active_energy_uj"] < data["Ampere-style"]["active_energy_uj"]

    def test_power_reduction_summary(self):
        reductions = gemm_power_reduction(size=512)
        assert reductions["power_reduction_vs_ampere_percent"] > 45
        assert reductions["energy_reduction_vs_ampere_percent"] > 65
