"""Tests for the ISA model and instruction stream builders."""

import pytest

from repro.isa.instructions import Instruction, OpClass, is_matrix, is_memory, latency_of
from repro.isa.program import InstructionStream, WarpProgram


class TestInstructions:
    def test_every_class_has_a_latency(self):
        for op_class in OpClass:
            assert latency_of(op_class) >= 1

    def test_memory_classification(self):
        assert is_memory(OpClass.LOAD_GLOBAL)
        assert is_memory(OpClass.STORE_SHARED)
        assert is_memory(OpClass.MMIO_STORE)
        assert not is_memory(OpClass.ALU)
        assert not is_memory(OpClass.HMMA_STEP)

    def test_matrix_classification(self):
        assert is_matrix(OpClass.HMMA_STEP)
        assert is_matrix(OpClass.WGMMA_INIT)
        assert not is_matrix(OpClass.FPU)

    def test_instruction_properties(self):
        instruction = Instruction(op_class=OpClass.LOAD_SHARED, bytes_accessed=32)
        assert instruction.is_memory
        assert not instruction.is_matrix
        assert instruction.latency == latency_of(OpClass.LOAD_SHARED)

    def test_hmma_step_slower_than_alu(self):
        assert latency_of(OpClass.HMMA_STEP) > latency_of(OpClass.HMMA_SET)


class TestWarpProgram:
    def test_emit_and_len(self):
        program = WarpProgram()
        program.emit_class(OpClass.ALU, repeat=3)
        assert len(program) == 3

    def test_emit_negative_repeat_rejected(self):
        with pytest.raises(ValueError):
            WarpProgram().emit_class(OpClass.ALU, repeat=-1)

    def test_count_by_class(self):
        program = WarpProgram()
        program.emit_class(OpClass.ALU, repeat=2)
        program.emit_class(OpClass.FPU, repeat=5)
        counts = program.count_by_class()
        assert counts[OpClass.ALU] == 2
        assert counts[OpClass.FPU] == 5

    def test_extend_repeats(self):
        inner = WarpProgram().emit_class(OpClass.ALU, repeat=2)
        outer = WarpProgram().extend(inner, repeat=3)
        assert len(outer) == 6

    def test_register_traffic_totals(self):
        program = WarpProgram()
        program.emit_class(OpClass.ALU, repeat=4, reg_reads=2, reg_writes=1)
        assert program.total_reg_reads() == 8
        assert program.total_reg_writes() == 4

    def test_total_bytes_filtered(self):
        program = WarpProgram()
        program.emit_class(OpClass.LOAD_GLOBAL, repeat=2, bytes_accessed=32)
        program.emit_class(OpClass.LOAD_SHARED, repeat=1, bytes_accessed=16)
        assert program.total_bytes() == 80
        assert program.total_bytes([OpClass.LOAD_GLOBAL]) == 64


class TestInstructionStream:
    def test_total_instructions_scales_with_warps_and_iterations(self):
        program = WarpProgram().emit_class(OpClass.ALU, repeat=10)
        stream = InstructionStream(programs=[program], warps=8, iterations=4)
        assert stream.instructions_per_warp() == 10
        assert stream.total_instructions() == 320

    def test_count_by_class_scaled(self):
        program = WarpProgram().emit_class(OpClass.FPU, repeat=3)
        stream = InstructionStream(programs=[program], warps=2, iterations=2)
        assert stream.count_by_class()[OpClass.FPU] == 12

    def test_merged_program(self):
        stream = InstructionStream()
        stream.add(WarpProgram().emit_class(OpClass.ALU, repeat=1))
        stream.add(WarpProgram().emit_class(OpClass.FPU, repeat=2))
        assert len(stream.merged_program()) == 3
