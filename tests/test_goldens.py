"""Golden-file regression tests for every ``to_dict()``/``to_json`` surface.

Each test renders one canonical serialization -- the encodings the CLI
prints and the batch runner's on-disk cache stores -- and compares it byte
for byte against a committed file under ``tests/goldens/``.  Any drift in
field names, value computation or float formatting fails here, at review
time, instead of surfacing later as silently-invalidated (or worse,
misread) cache entries.

Regenerate after an intentional change with::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens

and commit the resulting diff.  On an unchanged tree regeneration is
byte-identical (the simulation stack and the encoding are deterministic),
which ``test_goldens_are_reproducible`` enforces directly.
"""

import json

from repro.analysis.model_breakdown import model_overlap_report
from repro.analysis.serving import serving_latency_report, serving_perf_stats
from repro.config.presets import DesignKind
from repro.analysis.trace_report import trace_summary
from repro.obs import TraceRecorder, tracing
from repro.perf import timing_cache
from repro.runner import run_flash_attention, run_gemm, to_json
from repro.workloads import (
    REQUEST_MODELS,
    ModelSpec,
    RequestSpec,
    ServingTrace,
    build_request_stream,
    build_stream_trace,
    run_model,
    run_serving,
)

#: Tiny, fixed workloads: goldens must be fast to regenerate and stable.
GPT_TINY = ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                     hidden=128, blocks=1, heads=4, context_len=64)
MOE_TINY = ModelSpec(family="moe", phase="decode", batch=2, seq_len=32,
                     hidden=128, blocks=1, heads=4, context_len=64,
                     experts=4, top_k=2)

SERVING_TRACE = ServingTrace(
    name="golden-trace",
    requests=(
        RequestSpec(request_id="g0", model=GPT_TINY, arrival_cycle=0,
                    prompt_len=32, decode_steps=2),
        RequestSpec(request_id="g1", model=MOE_TINY, arrival_cycle=1_000,
                    prompt_len=64, decode_steps=3),
    ),
    context_bucket=32,
)


def test_gemm_run_result_golden(golden):
    golden("gemm_virgo_128", run_gemm(DesignKind.VIRGO, 128).to_dict())


def test_gemm_power_report_golden(golden):
    golden("gemm_virgo_128_power", run_gemm(DesignKind.VIRGO, 128).power.to_dict())


def test_flash_run_result_golden(golden):
    golden("flash_virgo_default", run_flash_attention(DesignKind.VIRGO).to_dict())


def test_model_run_result_golden(golden):
    golden("model_gpt_decode_tiny", run_model(GPT_TINY, DesignKind.VIRGO).to_dict())


#: Masked-attention variants (PR 9): chunked prefill over prior context,
#: sliding-window, and ragged varlen packing.  Tiny mirrors of the zoo's
#: ``gpt-prefill-history`` / ``gpt-prefill-sw`` / ``gpt-prefill-varlen``.
HISTORY_TINY = ModelSpec(family="gpt", phase="prefill", batch=1, seq_len=32,
                         hidden=128, blocks=1, heads=4, context_len=96)
SW_TINY = ModelSpec(family="gpt", phase="prefill", batch=1, seq_len=64,
                    hidden=128, blocks=1, heads=4, window=16)
VARLEN_TINY = ModelSpec(family="gpt", phase="prefill", batch=1, seq_len=80,
                        hidden=128, blocks=1, heads=4, seq_lens=(24, 40, 16))


def test_model_masked_history_golden(golden):
    golden("model_gpt_history_tiny", run_model(HISTORY_TINY, DesignKind.VIRGO).to_dict())


def test_model_masked_window_golden(golden):
    golden("model_gpt_sw_tiny", run_model(SW_TINY, DesignKind.VIRGO).to_dict())


def test_model_masked_varlen_golden(golden):
    golden("model_gpt_varlen_tiny", run_model(VARLEN_TINY, DesignKind.VIRGO).to_dict())


def test_model_overlap_report_golden(golden):
    result = run_model(MOE_TINY, DesignKind.VIRGO, heterogeneous=True)
    golden("overlap_moe_decode_tiny_hetero", model_overlap_report(result))


def test_serving_run_result_golden(golden):
    golden("serving_trace_tiny", run_serving(SERVING_TRACE, DesignKind.VIRGO).to_dict())


def test_serving_latency_report_golden(golden):
    result = run_serving(SERVING_TRACE, DesignKind.VIRGO)
    golden("serving_latency_tiny", serving_latency_report(result))


#: Widely spaced solo requests: the shape epoch compression serves entirely
#: through learned episodes, so its diagnostics and trace are non-trivial.
EPOCH_TRACE = build_stream_trace(
    "golden-epochs",
    build_request_stream(
        REQUEST_MODELS["gpt-request"],
        [index * 3_000_000 for index in range(4)],
        prompt_len=105,
        decode_steps=24,
    ),
)


def test_serving_seed_parity_without_compression(golden):
    """``epoch_compression=False`` reproduces the pre-epoch (PR 7) serving
    output byte for byte: same golden file as the compressed default."""
    golden(
        "serving_trace_tiny",
        run_serving(
            SERVING_TRACE, DesignKind.VIRGO, epoch_compression=False
        ).to_dict(),
    )


def test_serving_perf_stats_epoch_golden(golden):
    """The ``serve --json`` perf section (cold run): cache, memo and epoch
    diagnostics.  Cleared cache first -- the stats are process-state."""
    timing_cache().clear()
    result = run_serving(EPOCH_TRACE, DesignKind.VIRGO)
    golden("serving_epoch_perf_tiny", serving_perf_stats(result))


def test_epoch_trace_summary_golden(golden):
    """trace-report's summary over a run whose tail is epoch/episode
    compressed: extrapolated runs export as single annotated spans."""
    timing_cache().clear()
    run_serving(EPOCH_TRACE, DesignKind.VIRGO)  # learn the episode template
    recorder = TraceRecorder(capture_phases=False)
    with tracing(recorder):
        result = run_serving(EPOCH_TRACE, DesignKind.VIRGO)
    assert result.epochs["episode_runs"] >= 1
    golden("trace_summary_epochs", trace_summary(recorder.chrome_trace(), top=5))


def test_to_json_matches_to_dict_encoding():
    """``to_json`` is the sorted-keys JSON of ``to_dict`` -- the exact bytes
    the result cache stores (modulo indentation)."""
    run = run_gemm(DesignKind.VIRGO, 128)
    assert json.loads(to_json(run)) == run.to_dict()


def test_goldens_are_reproducible():
    """Two renderings of the same surface are byte-identical: goldens can be
    regenerated on an unchanged tree without spurious diffs."""
    first = json.dumps(run_serving(SERVING_TRACE, DesignKind.VIRGO).to_dict(),
                       indent=2, sort_keys=True)
    second = json.dumps(run_serving(SERVING_TRACE, DesignKind.VIRGO).to_dict(),
                        indent=2, sort_keys=True)
    assert first == second
