"""Tests for the simulation substrate: counters, event engine, resources, task graphs."""

import pytest

from repro.sim.engine import EventQueue, Simulator
from repro.sim.resources import Resource, ResourcePool, ThroughputResource
from repro.sim.stats import Counters
from repro.sim.taskgraph import Operation, OperationGraph


class TestCounters:
    def test_add_and_get(self):
        counters = Counters()
        counters.add("a.b", 3)
        counters.add("a.b", 2)
        assert counters["a.b"] == 5

    def test_missing_key_is_zero(self):
        assert Counters()["nope"] == 0.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counters().add("x", -1)

    def test_merge(self):
        a = Counters({"x": 1})
        b = Counters({"x": 2, "y": 3})
        a.merge(b)
        assert a["x"] == 3 and a["y"] == 3

    def test_scaled(self):
        counters = Counters({"x": 2})
        scaled = counters.scaled(10)
        assert scaled["x"] == 20
        assert counters["x"] == 2  # original untouched

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            Counters().scaled(-1)

    def test_total_with_prefix(self):
        counters = Counters({"core.issue": 5, "core.alu": 3, "smem.read": 2})
        assert counters.total("core.") == 8
        assert counters.total() == 10

    def test_group_by_prefix(self):
        counters = Counters({"core.issue.x": 1, "core.alu.y": 2, "smem.z": 4})
        grouped = counters.group_by_prefix(1)
        assert grouped == {"core": 3, "smem": 4}

    def test_add_operator(self):
        total = Counters({"x": 1}) + Counters({"x": 2})
        assert total["x"] == 3

    def test_iteration_and_len(self):
        counters = Counters({"a": 1, "b": 2})
        assert set(counters) == {"a", "b"}
        assert len(counters) == 2


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(5, lambda: None)
        queue.push(2, lambda: None)
        assert queue.pop().time == 2

    def test_fifo_within_same_time(self):
        queue = EventQueue()
        order = []
        queue.push(3, lambda: order.append("first"))
        queue.push(3, lambda: order.append("second"))
        queue.pop().callback()
        queue.pop().callback()
        assert order == ["first", "second"]

    def test_cancel(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        event.cancel()
        assert queue.pop() is None

    def test_len_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        event.cancel()
        assert len(queue) == 1


class TestSimulator:
    def test_runs_in_time_order(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(10, lambda: seen.append(simulator.now))
        simulator.schedule(5, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [5, 10]

    def test_chained_events(self):
        simulator = Simulator()
        seen = []

        def first():
            seen.append(simulator.now)
            simulator.schedule(7, lambda: seen.append(simulator.now))

        simulator.schedule(3, first)
        simulator.run()
        assert seen == [3, 10]

    def test_cannot_schedule_in_past(self):
        simulator = Simulator()
        with pytest.raises(ValueError):
            simulator.schedule(-1, lambda: None)

    def test_run_until(self):
        simulator = Simulator()
        simulator.schedule(100, lambda: None)
        simulator.run(until=50)
        assert simulator.now == 50

    def test_max_cycles_guard(self):
        simulator = Simulator(max_cycles=10)

        def reschedule():
            simulator.schedule(5, reschedule)

        simulator.schedule(5, reschedule)
        with pytest.raises(RuntimeError):
            simulator.run()

    def test_step(self):
        simulator = Simulator()
        simulator.schedule(2, lambda: None)
        assert simulator.step() is True
        assert simulator.step() is False


class TestResource:
    def test_back_to_back_reservations(self):
        resource = Resource("unit")
        assert resource.reserve(0, 10) == (0, 10)
        assert resource.reserve(0, 5) == (10, 15)

    def test_respects_ready_time(self):
        resource = Resource("unit")
        assert resource.reserve(20, 5) == (20, 25)

    def test_multiple_instances(self):
        resource = Resource("unit", count=2)
        assert resource.reserve(0, 10) == (0, 10)
        assert resource.reserve(0, 10) == (0, 10)
        assert resource.reserve(0, 10) == (10, 20)

    def test_utilization(self):
        resource = Resource("unit")
        resource.reserve(0, 50)
        assert resource.utilization(100) == pytest.approx(0.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Resource("unit").reserve(0, -1)


class TestThroughputResource:
    def test_cycles_for_units(self):
        resource = ThroughputResource("bw", units_per_cycle=32)
        assert resource.cycles_for(64) == 2
        assert resource.cycles_for(65) == 3
        assert resource.cycles_for(0) == 0

    def test_reserve_units_tracks_totals(self):
        resource = ThroughputResource("bw", units_per_cycle=16)
        resource.reserve_units(0, 160)
        assert resource.units_served == 160
        assert resource.busy_cycles == 10


class TestResourcePool:
    def test_duplicate_rejected(self):
        pool = ResourcePool()
        pool.add(Resource("a"))
        with pytest.raises(ValueError):
            pool.add(Resource("a"))

    def test_contains_and_getitem(self):
        pool = ResourcePool()
        resource = pool.add(Resource("a"))
        assert "a" in pool
        assert pool["a"] is resource


class TestOperationGraph:
    def _graph(self):
        graph = OperationGraph()
        graph.add_resource(Resource("dma"))
        graph.add_resource(Resource("matrix"))
        return graph

    def test_simple_chain(self):
        graph = self._graph()
        graph.add_operation("load", "dma", 100)
        graph.add_operation("compute", "matrix", 200, deps=["load"])
        result = graph.schedule()
        assert result.total_cycles == 300
        assert result.finish_time("load") == 100

    def test_pipelined_double_buffering(self):
        """Loads overlap with the previous compute, so total < sum of all ops."""
        graph = self._graph()
        graph.add_operation("load0", "dma", 100)
        graph.add_operation("compute0", "matrix", 200, deps=["load0"])
        graph.add_operation("load1", "dma", 100)
        graph.add_operation("compute1", "matrix", 200, deps=["load1", "compute0"])
        result = graph.schedule()
        assert result.total_cycles == 500  # load1 hidden under compute0

    def test_resource_serialization(self):
        graph = self._graph()
        graph.add_operation("a", "matrix", 100)
        graph.add_operation("b", "matrix", 100)
        result = graph.schedule()
        assert result.total_cycles == 200

    def test_unknown_resource_rejected(self):
        graph = self._graph()
        with pytest.raises(ValueError):
            graph.add_operation("x", "nope", 10)

    def test_unknown_dependency_rejected(self):
        graph = self._graph()
        with pytest.raises(ValueError):
            graph.add_operation("x", "dma", 10, deps=["missing"])

    def test_duplicate_operation_rejected(self):
        graph = self._graph()
        graph.add_operation("x", "dma", 10)
        with pytest.raises(ValueError):
            graph.add_operation("x", "dma", 10)

    def test_ready_after(self):
        graph = self._graph()
        graph.add_operation("x", "dma", 10, ready_after=50)
        assert graph.schedule().total_cycles == 60

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Operation(name="x", resource="dma", duration=-5)

    def test_kind_cycles(self):
        graph = self._graph()
        graph.add_operation("a", "dma", 10, kind="dma")
        graph.add_operation("b", "matrix", 20, kind="compute")
        result = graph.schedule()
        assert result.critical_kind_cycles() == {"dma": 10, "compute": 20}


class TestReservationRecording:
    def test_recording_is_opt_in(self):
        resource = Resource("unit")
        resource.reserve(0, 10, label="op")
        assert resource.reservations == []
        assert resource.busy_cycles == 10

    def test_opt_in_records_intervals(self):
        resource = Resource("unit", record_reservations=True)
        resource.reserve(0, 10, label="a")
        resource.reserve(0, 5, label="b")
        assert [(r.start, r.end, r.label) for r in resource.reservations] == [
            (0, 10, "a"),
            (10, 15, "b"),
        ]

    def test_throughput_resource_passes_flag_through(self):
        resource = ThroughputResource("bw", units_per_cycle=4, record_reservations=True)
        resource.reserve_units(0, 16, label="xfer")
        assert len(resource.reservations) == 1
        assert resource.reservations[0].duration == 4


class TestEventQueueLiveCount:
    """len()/truthiness are tracked incrementally, not by rescanning the heap."""

    def test_push_pop_cancel_keep_count_consistent(self):
        queue = EventQueue()
        events = [queue.push(i, lambda: None) for i in range(5)]
        assert len(queue) == 5
        events[0].cancel()
        events[0].cancel()  # idempotent: counted once
        assert len(queue) == 4
        assert queue.pop() is events[1]
        assert len(queue) == 3
        for event in events[2:]:
            event.cancel()
        assert len(queue) == 0
        assert not queue
        assert queue.pop() is None

    def test_simulator_drains_with_many_cancellations(self):
        simulator = Simulator()
        fired = []
        keepers = [simulator.schedule(i, lambda i=i: fired.append(i)) for i in range(0, 100, 2)]
        victims = [simulator.schedule(i, lambda: fired.append(-1)) for i in range(1, 100, 2)]
        for victim in victims:
            victim.cancel()
        simulator.run()
        assert fired == list(range(0, 100, 2))
        assert simulator.events_processed == len(keepers)

    def test_cancel_after_pop_does_not_corrupt_live_count(self):
        queue = EventQueue()
        first = queue.push(0, lambda: None)
        queue.push(1, lambda: None)
        popped = queue.pop()
        assert popped is first
        popped.cancel()  # late cancel of a dequeued event must be a no-op
        assert len(queue) == 1
        assert queue

    def test_callback_cancelling_its_own_event_keeps_simulator_running(self):
        simulator = Simulator()
        fired = []
        holder = {}

        def self_cancelling():
            fired.append("first")
            holder["event"].cancel()

        holder["event"] = simulator.schedule(1, self_cancelling)
        simulator.schedule(2, lambda: fired.append("second"))
        simulator.run()
        assert fired == ["first", "second"]
