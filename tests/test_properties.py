"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.soc import DataType, SharedMemoryConfig
from repro.core.accumulator import AccumulatorMemory
from repro.core.systolic_array import SystolicArray
from repro.memory.coalescer import Coalescer
from repro.memory.shared_memory import BankedSharedMemory
from repro.sim.resources import Resource
from repro.sim.stats import Counters
from repro.sim.taskgraph import OperationGraph
from repro.simt.occupancy import GENERATIONS, OccupancyCalculator
from repro.kernels.flash_attention import flash_attention_reference, attention_reference
from repro.kernels.gemm.base import GemmWorkload
from repro.kernels.gemm.tiling import ThreadBlockTiling


# --------------------------------------------------------------------------- #
# Counters
# --------------------------------------------------------------------------- #


@given(
    st.dictionaries(
        st.sampled_from(["a.x", "a.y", "b.z"]),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        max_size=3,
    ),
    st.floats(min_value=0, max_value=100, allow_nan=False),
)
def test_counters_scaling_is_linear(counts, factor):
    counters = Counters(counts)
    scaled = counters.scaled(factor)
    for key, value in counts.items():
        assert scaled[key] == value * factor


@given(
    st.dictionaries(st.sampled_from(["a", "b", "c"]), st.floats(0, 1e6), max_size=3),
    st.dictionaries(st.sampled_from(["a", "b", "c"]), st.floats(0, 1e6), max_size=3),
)
def test_counters_merge_commutative_in_totals(left, right):
    a = Counters(left) + Counters(right)
    b = Counters(right) + Counters(left)
    # Floating-point addition is not associative, so compare within an ulp-scale
    # tolerance rather than exactly.
    assert a.total() == pytest.approx(b.total(), rel=1e-12)


# --------------------------------------------------------------------------- #
# Resources and scheduling
# --------------------------------------------------------------------------- #


@given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 100)), min_size=1, max_size=30))
def test_resource_reservations_never_overlap(requests):
    resource = Resource("unit")
    intervals = []
    for ready, duration in requests:
        start, end = resource.reserve(ready, duration)
        assert start >= ready
        intervals.append((start, end))
    intervals.sort()
    for (_, prev_end), (next_start, _) in zip(intervals, intervals[1:]):
        assert next_start >= prev_end


@given(st.lists(st.integers(1, 500), min_size=1, max_size=20))
def test_chain_schedule_equals_sum(durations):
    graph = OperationGraph()
    graph.add_resource(Resource("r"))
    previous = None
    for index, duration in enumerate(durations):
        deps = [previous] if previous else []
        graph.add_operation(f"op{index}", "r", duration, deps=deps)
        previous = f"op{index}"
    assert graph.schedule().total_cycles == sum(durations)


@given(st.lists(st.integers(1, 500), min_size=1, max_size=20))
def test_independent_ops_on_two_resources_finish_at_max(durations):
    graph = OperationGraph()
    graph.add_resource(Resource("a"))
    graph.add_resource(Resource("b"))
    for index, duration in enumerate(durations):
        graph.add_operation(f"a{index}", "a", duration)
        graph.add_operation(f"b{index}", "b", duration)
    assert graph.schedule().total_cycles == sum(durations)


# --------------------------------------------------------------------------- #
# Memory system
# --------------------------------------------------------------------------- #


@given(st.lists(st.integers(0, 0x1FFFC // 4).map(lambda w: w * 4), min_size=1, max_size=8))
def test_shared_memory_mapping_in_range(addresses):
    smem = BankedSharedMemory(SharedMemoryConfig())
    for address in addresses:
        bank, subbank = smem.bank_and_subbank(address)
        assert 0 <= bank < smem.config.banks
        assert 0 <= subbank < smem.config.subbanks


@given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=32))
def test_coalescer_merged_requests_bounded(addresses):
    coalescer = Coalescer(line_bytes=64)
    result = coalescer.coalesce(addresses)
    assert 1 <= result.merged_requests <= len(addresses)


@given(st.integers(1, 64), st.integers(1, 64))
def test_accumulator_roundtrip(rows, cols):
    accumulator = AccumulatorMemory(64 * 1024)
    accumulator.allocate("t", rows, cols)
    values = np.full((rows, cols), 3.5, dtype=np.float32)
    accumulator.write("t", values)
    np.testing.assert_allclose(accumulator.read("t"), values)


# --------------------------------------------------------------------------- #
# Systolic array
# --------------------------------------------------------------------------- #


@settings(deadline=None, max_examples=25)
@given(st.integers(1, 64), st.integers(1, 64), st.integers(1, 64))
def test_systolic_tile_cycles_at_least_ideal(m, n, k):
    array = SystolicArray(16, 16, dtype=DataType.FP32)
    assert array.tile_cycles(m, n, k) >= array.ideal_tile_cycles(m, n, k)


@settings(deadline=None, max_examples=20)
@given(st.integers(1, 24), st.integers(1, 24), st.integers(1, 24))
def test_systolic_functional_matches_numpy(m, k, n):
    rng = np.random.default_rng(m * 1000 + k * 10 + n)
    array = SystolicArray(32, 32, dtype=DataType.FP32)
    a = rng.standard_normal((min(m, 32), k)).astype(np.float32)
    b = rng.standard_normal((k, min(n, 32))).astype(np.float32)
    np.testing.assert_allclose(array.compute_subtile(a, b), a @ b, rtol=1e-4, atol=1e-4)


# --------------------------------------------------------------------------- #
# Occupancy
# --------------------------------------------------------------------------- #


@given(st.integers(16, 255), st.sampled_from(list(GENERATIONS)))
def test_occupancy_bounded(registers, gpu):
    calculator = OccupancyCalculator(GENERATIONS[gpu])
    result = calculator.calculate(registers, threads_per_block=256)
    assert 0.0 <= result.occupancy <= 1.0


# --------------------------------------------------------------------------- #
# GEMM tiling invariants
# --------------------------------------------------------------------------- #


@settings(deadline=None, max_examples=40)
@given(
    st.integers(1, 16).map(lambda x: 64 * x),
    st.integers(1, 16).map(lambda x: 64 * x),
    st.integers(1, 16).map(lambda x: 64 * x),
)
def test_tiling_covers_all_macs(m, n, k):
    workload = GemmWorkload(m=m, n=n, k=k)
    tiling = ThreadBlockTiling(block_m=64, block_n=64, block_k=64, workload=workload)
    covered = tiling.total_iterations * tiling.macs_per_iteration
    assert covered >= workload.macs


# --------------------------------------------------------------------------- #
# FlashAttention numerics
# --------------------------------------------------------------------------- #


@settings(deadline=None, max_examples=10)
@given(st.integers(1, 4), st.integers(1, 4))
def test_flash_attention_matches_reference(q_blocks, kv_blocks):
    rng = np.random.default_rng(q_blocks * 10 + kv_blocks)
    q = rng.standard_normal((16 * q_blocks, 32)).astype(np.float32)
    k = rng.standard_normal((16 * kv_blocks, 32)).astype(np.float32)
    v = rng.standard_normal((16 * kv_blocks, 32)).astype(np.float32)
    blocked = flash_attention_reference(q, k, v, block_q=16, block_kv=16)
    np.testing.assert_allclose(blocked, attention_reference(q, k, v), rtol=1e-4, atol=1e-4)
