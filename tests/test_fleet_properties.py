"""Property-based tests (hypothesis) for the fleet router's math and chaos.

Two families of invariants:

1. **Retry/backoff arithmetic** -- for every (base, cap, attempt, seed,
   request) the backoff window grows exponentially until it saturates at
   the cap, the jittered delay always lands in ``[window/2, window)`` (and
   never below one cycle), and the draw is a pure function of its key --
   re-evaluating it never changes the answer, and an exhausted retry
   budget always lands the request on ``timed_out``.

2. **Disposition partition** -- under *any* seeded fault plan (random
   crash/slow/partition rates, durations and seeds) and every router
   policy, each request ends in exactly one of ``FLEET_DISPOSITIONS``, the
   census sums to the request count, and the run is reproducible: the same
   arguments give a byte-identical canonical encoding.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FleetFaultPlan
from repro.workloads import (
    FLEET_DISPOSITIONS,
    ROUTER_POLICIES,
    ModelSpec,
    RequestSpec,
    RouterConfig,
    ServingTrace,
    backoff_cycles,
    resolve_slo,
    run_fleet,
)

TINY_GPT = ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                     hidden=128, blocks=1, heads=4)

#: Mixing SLO-free (priority 0, sheddable) and SLO-carrying requests keeps
#: every disposition reachable under the generated fault plans.
SLOS = (None, resolve_slo("standard"), resolve_slo("interactive"))


@st.composite
def fleet_traces(draw):
    count = draw(st.integers(1, 4))
    arrivals = sorted(draw(st.integers(0, 200_000)) for _ in range(count))
    requests = tuple(
        RequestSpec(
            request_id=f"p{index}",
            model=TINY_GPT,
            arrival_cycle=arrival,
            prompt_len=32,
            decode_steps=draw(st.integers(1, 3)),
            slo=SLOS[draw(st.integers(0, len(SLOS) - 1))],
        )
        for index, arrival in enumerate(arrivals)
    )
    return ServingTrace(name="prop-fleet", requests=requests, context_bucket=32)


@st.composite
def fault_plans(draw):
    return FleetFaultPlan(
        seed=draw(st.integers(0, 2**16)),
        crash_rate=draw(st.floats(0.0, 1.0, allow_nan=False)),
        crash_down_cycles=draw(st.integers(1, 2_000_000)),
        slow_rate=draw(st.floats(0.0, 1.0, allow_nan=False)),
        slow_scale=draw(st.floats(1.0, 8.0, allow_nan=False)),
        slow_cycles=draw(st.integers(1, 1_000_000)),
        partition_rate=draw(st.floats(0.0, 1.0, allow_nan=False)),
        partition_cycles=draw(st.integers(1, 500_000)),
    )


class TestBackoffProperties:
    @given(base=st.integers(1, 10_000), doublings=st.integers(0, 20),
           attempt=st.integers(0, 64), seed=st.integers(0, 2**32),
           request=st.text(min_size=1, max_size=8))
    @settings(deadline=None, max_examples=200)
    def test_delay_stays_inside_the_capped_window(self, base, doublings,
                                                  attempt, seed, request):
        cap = base * (1 << doublings)
        window = min(cap, base * (1 << min(attempt, doublings)))
        delay = backoff_cycles(attempt, base=base, cap=cap, seed=seed,
                               request_id=request)
        assert 1 <= delay < max(2, window)
        assert delay >= window // 2

    @given(base=st.integers(1, 1000), attempt=st.integers(0, 30),
           seed=st.integers(0, 2**16))
    @settings(deadline=None, max_examples=100)
    def test_windows_grow_monotonically_until_the_cap(self, base, attempt, seed):
        # Comparing lower bounds: delay(n+1)'s window is twice delay(n)'s
        # until saturation, so min-possible(n+1) >= max-possible(n)/2.
        cap = base * 1024
        here = backoff_cycles(attempt, base=base, cap=cap, seed=seed,
                              request_id="m")
        next_up = backoff_cycles(attempt + 1, base=base, cap=cap, seed=seed,
                                 request_id="m")
        window_here = min(cap, base * (1 << attempt)) if attempt <= 10 else cap
        assert next_up >= window_here // 2
        assert here <= cap and next_up <= cap

    @given(attempt=st.integers(0, 40), seed=st.integers(0, 2**32),
           request=st.text(min_size=1, max_size=12))
    @settings(deadline=None, max_examples=100)
    def test_draws_are_pure_functions_of_their_key(self, attempt, seed, request):
        args = dict(base=500, cap=64_000, seed=seed, request_id=request)
        assert backoff_cycles(attempt, **args) == backoff_cycles(attempt, **args)

    @given(budget=st.integers(0, 3), seed=st.integers(0, 2**16))
    @settings(deadline=None, max_examples=10)
    def test_exhausted_retry_budget_times_out(self, budget, seed):
        # A partition outlasting any possible backoff sequence: whatever the
        # budget, the request must end "timed_out" -- never hang, never
        # silently vanish.
        trace = ServingTrace(
            name="exhaust",
            requests=(RequestSpec(request_id="x", model=TINY_GPT,
                                  prompt_len=32, decode_steps=1,
                                  slo=resolve_slo("interactive")),),
            context_bucket=32,
        )
        config = RouterConfig(max_retries=budget, retry_base_cycles=50,
                              retry_cap_cycles=400, dispatch_timeout=50,
                              seed=seed)
        result = run_fleet(trace, 2, config=config,
                           faults="partition@0:0:99000000,partition@1:0:99000000")
        # Exhaustion can land two ways: the budget burns down against
        # believed-up-but-unreachable replicas (budget + 1 recorded tries),
        # or every replica's belief flips down first, the request parks and
        # its class's queue deadline fires.  Either way: "timed_out", and
        # never more tries than the budget allows.
        assert result.requests[0].disposition == "timed_out"
        assert result.requests[0].retries <= budget + 1
        assert result.retry_count == result.requests[0].retries


class TestDispositionPartition:
    @given(trace=fleet_traces(), plan=fault_plans(),
           policy=st.sampled_from(sorted(ROUTER_POLICIES)),
           replicas=st.integers(1, 3))
    @settings(deadline=None, max_examples=25)
    def test_every_request_gets_exactly_one_disposition(self, trace, plan,
                                                        policy, replicas):
        result = run_fleet(trace, replicas, policy=policy, faults=plan)
        assert len(result.requests) == len(trace)
        for request in result.requests:
            assert request.disposition in FLEET_DISPOSITIONS
        assert sum(result.dispositions.values()) == len(trace)
        for name in FLEET_DISPOSITIONS:
            assert result.dispositions[name] == sum(
                1 for request in result.requests
                if request.disposition == name
            )
        assert 0.0 <= result.goodput <= 1.0
        assert 0.0 <= result.availability <= 1.0

    @given(trace=fleet_traces(), plan=fault_plans(),
           policy=st.sampled_from(sorted(ROUTER_POLICIES)))
    @settings(deadline=None, max_examples=8)
    def test_reruns_are_byte_identical(self, trace, plan, policy):
        first = run_fleet(trace, 2, policy=policy, faults=plan)
        again = run_fleet(trace, 2, policy=policy, faults=plan)
        assert json.dumps(first.to_dict(), sort_keys=True) == \
            json.dumps(again.to_dict(), sort_keys=True)
