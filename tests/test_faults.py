"""Chaos suite for the deterministic fault-injection harness.

Asserts the serving stack degrades *gracefully* under injected faults: runs
terminate (no deadlock), every request lands in exactly one disposition
(conservation), two runs with the same seed are byte-identical, spiked
timings never poison the process-wide caches, and the budgeted policies
keep goodput strictly above FCFS under the same fault plan -- graceful
degradation versus collapse.
"""

import json

import pytest

from differential import assert_byte_identical

from repro.__main__ import main
from repro.faults import FaultInjector, FaultPlan
from repro.workloads import (
    DISPOSITIONS,
    ModelSpec,
    RequestSpec,
    ServingTrace,
    resolve_trace,
    run_serving,
)

TINY_GPT = ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                     hidden=128, blocks=1, heads=4)

#: The acceptance fault plan: kernel spikes plus iteration stalls, seeded.
PLAN_SPEC = "spike:0.35:3.0,stall:0.25:60000"
SEED = 7
KV_BUDGET = 300_000


def tiny_trace(arrivals=(0, 0, 40_000), decode_steps=2):
    requests = tuple(
        RequestSpec(
            request_id=f"f{index}",
            model=TINY_GPT,
            arrival_cycle=arrival,
            prompt_len=32,
            decode_steps=decode_steps,
        )
        for index, arrival in enumerate(arrivals)
    )
    return ServingTrace(name="chaos", requests=requests, context_bucket=32)


class TestFaultPlanParsing:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse("spike:0.3:4.0,stall:0.2:5000,burst:0.5:30000", seed=11)
        assert plan.seed == 11
        assert plan.spike_rate == 0.3 and plan.spike_multiplier == 4.0
        assert plan.stall_rate == 0.2 and plan.stall_cycles == 5000
        assert plan.burst_rate == 0.5 and plan.burst_pull_cycles == 30000
        assert plan.active

    def test_parse_single_token_with_whitespace(self):
        plan = FaultPlan.parse(" spike : 0.1 : 2.0 ")
        assert plan.spike_rate == 0.1 and plan.spike_multiplier == 2.0

    def test_malformed_token(self):
        with pytest.raises(ValueError, match="malformed fault token 'wat'"):
            FaultPlan.parse("wat")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind 'gamma'"):
            FaultPlan.parse("gamma:0.5:2")

    def test_non_numeric_fields(self):
        with pytest.raises(ValueError, match="is not a number"):
            FaultPlan.parse("spike:often:2.0")
        with pytest.raises(ValueError, match="is not an integer"):
            FaultPlan.parse("stall:0.5:soon")

    def test_empty_spec(self):
        with pytest.raises(ValueError, match="empty fault spec"):
            FaultPlan.parse("  ,  ")

    def test_plan_validation(self):
        with pytest.raises(ValueError, match="spike_rate"):
            FaultPlan(spike_rate=1.5)
        with pytest.raises(ValueError, match="spike_multiplier"):
            FaultPlan(spike_multiplier=0.5)
        with pytest.raises(ValueError, match="stall_cycles"):
            FaultPlan(stall_cycles=-1)

    def test_inactive_default(self):
        assert FaultPlan().active is False

    def test_to_dict_round_trip(self):
        plan = FaultPlan.parse(PLAN_SPEC, seed=SEED)
        assert FaultPlan(**plan.to_dict()) == plan


class TestFaultInjector:
    def test_decisions_are_seed_deterministic(self):
        a = FaultInjector(FaultPlan.parse(PLAN_SPEC, seed=3))
        b = FaultInjector(FaultPlan.parse(PLAN_SPEC, seed=3))
        assert [a.iteration_spike(i) for i in range(50)] == [
            b.iteration_spike(i) for i in range(50)
        ]
        assert [a.iteration_stall(i) for i in range(50)] == [
            b.iteration_stall(i) for i in range(50)
        ]

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultPlan.parse(PLAN_SPEC, seed=0))
        b = FaultInjector(FaultPlan.parse(PLAN_SPEC, seed=1))
        assert [a.iteration_spike(i) for i in range(50)] != [
            b.iteration_spike(i) for i in range(50)
        ]

    def test_inactive_kinds_never_fire(self):
        injector = FaultInjector(FaultPlan(stall_rate=1.0, stall_cycles=0))
        assert all(injector.iteration_stall(i) == 0 for i in range(10))
        assert all(injector.iteration_spike(i) is None for i in range(10))

    def test_perturb_trace_pulls_arrivals_and_stays_valid(self):
        trace = tiny_trace(arrivals=(0, 100_000, 200_000))
        injector = FaultInjector(FaultPlan(seed=2, burst_rate=1.0, burst_pull_cycles=150_000))
        perturbed = injector.perturb_trace(trace)
        originals = {r.request_id: r.arrival_cycle for r in trace.requests}
        for request in perturbed.requests:
            assert request.arrival_cycle == max(0, originals[request.request_id] - 150_000)
        arrivals = [(r.arrival_cycle, r.request_id) for r in perturbed.requests]
        assert arrivals == sorted(arrivals)

    def test_zero_burst_rate_returns_trace_unchanged(self):
        trace = tiny_trace()
        injector = FaultInjector(FaultPlan(seed=2, stall_rate=0.5, stall_cycles=100))
        assert injector.perturb_trace(trace) is trace


class TestChaosRuns:
    def test_faulted_run_terminates_and_conserves_requests(self):
        trace = resolve_trace("bursty-slo")
        result = run_serving(trace, faults=PLAN_SPEC, fault_seed=SEED)
        assert result.control_active is True
        assert sum(result.dispositions.values()) == len(trace.requests)
        assert len(result.requests) == len(trace.requests)
        for request in result.requests:
            assert request.disposition in DISPOSITIONS

    def test_conservation_holds_for_every_policy(self):
        trace = resolve_trace("bursty-slo")
        for policy in ("fcfs", "kv-budget", "preemptive-slo"):
            kv_budget = KV_BUDGET if policy != "fcfs" else None
            result = run_serving(
                trace, policy=policy, kv_budget=kv_budget,
                faults=PLAN_SPEC, fault_seed=SEED,
            )
            assert sum(result.dispositions.values()) == len(trace.requests), policy

    def test_same_seed_byte_identical(self):
        runs = [
            run_serving("bursty-slo", policy="preemptive-slo", kv_budget=KV_BUDGET,
                        faults=PLAN_SPEC, fault_seed=SEED)
            for _ in range(2)
        ]
        assert_byte_identical(runs[0], runs[1], context="same fault seed")

    def test_different_seed_differs(self):
        a = run_serving("bursty-slo", faults=PLAN_SPEC, fault_seed=SEED)
        b = run_serving("bursty-slo", faults=PLAN_SPEC, fault_seed=SEED + 1)
        assert json.dumps(a.to_dict()) != json.dumps(b.to_dict())

    def test_memo_off_byte_identical_under_faults(self):
        kwargs = dict(policy="preemptive-slo", kv_budget=KV_BUDGET,
                      faults=PLAN_SPEC, fault_seed=SEED)
        warm = run_serving("bursty-slo", iteration_memo=True, **kwargs)
        cold = run_serving("bursty-slo", iteration_memo=False, **kwargs)
        assert_byte_identical(warm, cold, context="memo on vs off under faults")

    def test_spikes_never_poison_caches(self):
        # Clean -> faulted -> clean: the third run must match the first
        # byte-for-byte, or a spiked timing leaked into the timing cache or
        # the iteration memo.
        trace = tiny_trace()
        before = run_serving(trace)
        run_serving(trace, faults="spike:1.0:5.0", fault_seed=1)
        after = run_serving(trace)
        assert_byte_identical(before, after, context="clean run after faulted run")

    def test_stalls_extend_makespan(self):
        trace = tiny_trace()
        clean = run_serving(trace)
        stalled = run_serving(trace, faults="stall:1.0:60000", fault_seed=1)
        assert stalled.total_cycles >= clean.total_cycles + 60_000
        assert clean.to_dict().get("faults") is None

    def test_fault_plan_recorded_in_result(self):
        result = run_serving(tiny_trace(), faults=PLAN_SPEC, fault_seed=SEED)
        encoded = result.to_dict()
        assert encoded["faults"]["seed"] == SEED
        assert encoded["faults"]["spike_multiplier"] == 3.0


class TestGracefulDegradation:
    def test_budgeted_policies_beat_fcfs_under_faults(self):
        """The acceptance inequality: graceful degradation, not collapse.

        Under the seeded spike+stall plan on the bursty SLO trace, admission
        control and preemption keep strictly more requests inside their SLOs
        than admit-everything FCFS.
        """
        goodput = {}
        for policy in ("fcfs", "kv-budget", "preemptive-slo"):
            kv_budget = KV_BUDGET if policy != "fcfs" else None
            result = run_serving(
                "bursty-slo", policy=policy, kv_budget=kv_budget,
                faults=PLAN_SPEC, fault_seed=SEED,
            )
            goodput[policy] = result.goodput
        assert goodput["kv-budget"] > goodput["fcfs"]
        assert goodput["preemptive-slo"] > goodput["fcfs"]

    def test_budgeted_policies_beat_fcfs_without_faults(self):
        goodput = {}
        for policy in ("fcfs", "preemptive-slo"):
            kv_budget = KV_BUDGET if policy != "fcfs" else None
            result = run_serving("bursty-slo", policy=policy, kv_budget=kv_budget)
            goodput[policy] = result.goodput
        assert goodput["preemptive-slo"] > goodput["fcfs"]


class TestInjectCli:
    def test_inject_flag_json_is_seed_deterministic(self, capsys):
        argv = ["serve", "--trace", "bursty-slo", "--policy", "preemptive-slo",
                "--kv-budget", str(KV_BUDGET), "--inject", PLAN_SPEC,
                "--fault-seed", str(SEED), "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        report = json.loads(first)
        assert report["faults"]["seed"] == SEED

    def test_malformed_inject_exits_friendly(self):
        with pytest.raises(SystemExit, match="malformed fault token"):
            main(["serve", "--trace", "bursty-slo", "--inject", "wat"])

    def test_unknown_fault_kind_exits_friendly(self):
        with pytest.raises(SystemExit, match="unknown fault kind"):
            main(["serve", "--trace", "bursty-slo", "--inject", "gamma:0.5:2"])
