"""Tests for the design-space sweeps around the Virgo design point."""

import pytest

from repro.analysis.sweeps import (
    cluster_scaling_sweep,
    dma_bandwidth_sweep,
    mesh_scaling_sweep,
)


class TestMeshScaling:
    @pytest.fixture(scope="class")
    def sweep(self):
        return mesh_scaling_sweep(size=512, meshes=(8, 16, 32))

    def test_utilization_stays_high_as_unit_scales(self, sweep):
        """The scalability claim: no register-file wall as the mesh grows."""
        for entry in sweep:
            assert entry["mac_utilization_percent"] > 55.0

    def test_power_grows_with_throughput(self, sweep):
        powers = [entry["active_power_mw"] for entry in sweep]
        assert powers == sorted(powers)

    def test_energy_per_flop_does_not_explode(self, sweep):
        """Energy per FLOP stays within ~2x across a 16x throughput range."""
        per_flop = [entry["energy_pj_per_flop"] for entry in sweep]
        assert max(per_flop) / min(per_flop) < 2.0

    def test_cycles_shrink_with_bigger_mesh(self, sweep):
        cycles = [entry["cycles"] for entry in sweep]
        assert cycles == sorted(cycles, reverse=True)


class TestClusterScaling:
    @pytest.fixture(scope="class")
    def sweep(self):
        return cluster_scaling_sweep(size=1024, cluster_counts=(1, 2, 4))

    def test_speedup_grows_with_clusters(self, sweep):
        speedups = [entry["speedup"] for entry in sweep]
        assert speedups == sorted(speedups)
        assert speedups[-1] > 2.5  # 4 clusters give close to 4x

    def test_energy_roughly_constant(self, sweep):
        energies = [entry["active_energy_uj"] for entry in sweep]
        assert max(energies) / min(energies) < 1.1

    def test_utilization_roughly_preserved(self, sweep):
        utils = [entry["mac_utilization_percent"] for entry in sweep]
        assert max(utils) - min(utils) < 12.0


class TestDmaBandwidth:
    def test_low_bandwidth_starves_the_matrix_unit(self):
        sweep = dma_bandwidth_sweep(size=512, bandwidths=(4.0, 32.0))
        starved, healthy = sweep[0], sweep[1]
        assert starved["mac_utilization_percent"] < healthy["mac_utilization_percent"]

    def test_utilization_monotonic_in_bandwidth(self):
        sweep = dma_bandwidth_sweep(size=512, bandwidths=(8.0, 16.0, 32.0, 64.0))
        utils = [entry["mac_utilization_percent"] for entry in sweep]
        assert all(b >= a - 1e-9 for a, b in zip(utils, utils[1:]))
