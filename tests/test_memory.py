"""Tests for the memory system: addresses, DRAM, caches, coalescer, shared memory, DMA."""

import pytest

from repro.config.soc import CacheConfig, DmaConfig, DramConfig, SharedMemoryConfig
from repro.memory.address import MatrixLayout, TileSpec, tile_addresses
from repro.memory.cache import Cache, CacheHierarchy
from repro.memory.coalescer import Coalescer
from repro.memory.dma import DmaDirection, DmaEngine
from repro.memory.dram import DramChannel
from repro.memory.interconnect import RequestBundle, SharedMemoryInterconnect
from repro.memory.shared_memory import BankConflictError, BankedSharedMemory
from repro.sim.stats import Counters


class TestTileSpec:
    def test_row_major_addressing(self):
        tile = TileSpec(base=0, rows=4, cols=8, leading_dim=128, elem_bytes=2)
        assert tile.element_address(0, 0) == 0
        assert tile.element_address(0, 1) == 2
        assert tile.element_address(1, 0) == 256

    def test_col_major_addressing(self):
        tile = TileSpec(
            base=0, rows=4, cols=8, leading_dim=64, elem_bytes=4, layout=MatrixLayout.COL_MAJOR
        )
        assert tile.element_address(1, 0) == 4
        assert tile.element_address(0, 1) == 256

    def test_out_of_bounds_rejected(self):
        tile = TileSpec(base=0, rows=2, cols=2, leading_dim=2)
        with pytest.raises(IndexError):
            tile.element_address(2, 0)

    def test_invalid_leading_dim(self):
        with pytest.raises(ValueError):
            TileSpec(base=0, rows=2, cols=8, leading_dim=4)

    def test_bytes_and_runs(self):
        tile = TileSpec(base=0, rows=4, cols=8, leading_dim=16, elem_bytes=2)
        assert tile.bytes == 64
        assert tile.runs == 4
        assert tile.contiguous_run_bytes == 16

    def test_tile_addresses_cover_all_words(self):
        tile = TileSpec(base=0, rows=2, cols=8, leading_dim=8, elem_bytes=2)
        addresses = tile_addresses(tile, word_bytes=4)
        assert len(addresses) == 2 * (16 // 4)
        assert addresses[0] == 0


class TestDram:
    def test_transfer_cycles_bandwidth_bound(self):
        dram = DramChannel(DramConfig(bandwidth_bytes_per_cycle=32, latency_cycles=100))
        assert dram.transfer_cycles(3200) == 100 + 100
        assert dram.transfer_cycles(3200, include_latency=False) == 100

    def test_zero_bytes(self):
        dram = DramChannel(DramConfig())
        assert dram.transfer_cycles(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DramChannel(DramConfig()).transfer_cycles(-1)

    def test_record_transfer_counts(self):
        dram = DramChannel(DramConfig())
        counters = Counters()
        dram.record_transfer(1024, counters)
        assert counters["dram.bytes"] == 1024
        assert dram.bytes_transferred == 1024


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache("l1", CacheConfig(size_bytes=16 * 1024))
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_same_line_hits(self):
        cache = Cache("l1", CacheConfig(size_bytes=16 * 1024, line_bytes=64))
        cache.access(0)
        assert cache.access(60) is True

    def test_lru_eviction(self):
        config = CacheConfig(size_bytes=256, line_bytes=64, ways=2)  # 2 sets x 2 ways
        cache = Cache("tiny", config)
        addresses = [0, 128, 256]  # all map to set 0
        for address in addresses:
            cache.access(address)
        assert cache.lookup(0) is False  # evicted
        assert cache.lookup(256) is True

    def test_dirty_writeback(self):
        config = CacheConfig(size_bytes=256, line_bytes=64, ways=1)  # 4 sets x 1 way
        cache = Cache("tiny", config)
        cache.access(0, is_write=True)
        cache.access(256)  # same set (line 4 -> set 0), evicts the dirty line
        assert cache.stats.writebacks == 1

    def test_access_stream(self):
        cache = Cache("l1", CacheConfig(size_bytes=16 * 1024))
        hits, misses = cache.access_stream([0, 0, 64, 64])
        assert hits == 2 and misses == 2

    def test_access_cycles(self):
        cache = Cache("l1", CacheConfig(size_bytes=16 * 1024, hit_latency=4, miss_penalty=30, mshrs=8))
        assert cache.access_cycles(hits=2, misses=0) == 8
        assert cache.access_cycles(hits=0, misses=8) == 30 + 8

    def test_hierarchy_latency_ordering(self):
        l1 = Cache("l1", CacheConfig(size_bytes=1024))
        l2 = Cache("l2", CacheConfig(size_bytes=64 * 1024))
        hierarchy = CacheHierarchy(l1=l1, l2=l2)
        cold = hierarchy.load(0x4000)
        warm = hierarchy.load(0x4000)
        assert cold > warm

    def test_record_counters(self):
        cache = Cache("l1", CacheConfig(size_bytes=16 * 1024))
        cache.access(0)
        counters = Counters()
        cache.record(counters, "l1")
        assert counters["l1.misses"] == 1


class TestCoalescer:
    def test_contiguous_warp_access_fully_coalesces(self):
        coalescer = Coalescer(line_bytes=64)
        addresses = [lane * 4 for lane in range(8)]
        result = coalescer.coalesce(addresses)
        assert result.merged_requests == 1
        assert result.efficiency == pytest.approx(1.0)

    def test_strided_access_does_not_coalesce(self):
        coalescer = Coalescer(line_bytes=64)
        addresses = [lane * 256 for lane in range(8)]
        result = coalescer.coalesce(addresses)
        assert result.merged_requests == 8

    def test_unaligned_detection(self):
        coalescer = Coalescer(line_bytes=64)
        result = coalescer.coalesce([2, 6, 10])
        assert result.unaligned_lanes == 3

    def test_requests_for_contiguous(self):
        assert Coalescer(line_bytes=64).requests_for_contiguous(130) == 3

    def test_invalid_line_size(self):
        with pytest.raises(ValueError):
            Coalescer(line_bytes=30)


class TestBankedSharedMemory:
    def _smem(self, subbanks=8):
        return BankedSharedMemory(SharedMemoryConfig(subbanks=subbanks))

    def test_bank_mapping_matches_figure3(self):
        """Bank 1 starts at 0x08000 for the 128 KiB / 4-bank configuration."""
        smem = self._smem()
        assert smem.bank_and_subbank(0x00000)[0] == 0
        assert smem.bank_and_subbank(0x08000)[0] == 1
        assert smem.bank_and_subbank(0x18000)[0] == 3

    def test_subbank_interleaving(self):
        smem = self._smem()
        assert smem.bank_and_subbank(0x0)[1] == 0
        assert smem.bank_and_subbank(0x4)[1] == 1
        assert smem.bank_and_subbank(0x20)[1] == 0  # wraps after 8 subbanks

    def test_out_of_range_rejected(self):
        with pytest.raises(BankConflictError):
            self._smem().bank_and_subbank(0x20000)

    def test_functional_read_write(self):
        smem = self._smem()
        smem.write_word(0x40, 0xDEADBEEF)
        assert smem.read_word(0x40) == 0xDEADBEEF
        assert smem.read_word(0x44) == 0

    def test_conflict_free_simt_access(self):
        smem = self._smem()
        result = smem.simt_access([lane * 4 for lane in range(8)])
        assert result.bank_conflicts == 0
        assert result.cycles == smem.config.access_latency

    def test_conflicting_simt_access_serializes(self):
        smem = self._smem()
        stride = smem.config.subbanks * 4
        result = smem.simt_access([lane * stride for lane in range(4)])
        assert result.bank_conflicts > 0
        assert result.cycles > smem.config.access_latency

    def test_unaligned_accesses_serialized(self):
        smem = self._smem()
        result = smem.simt_access([1, 5])
        assert result.serialized_unaligned == 2

    def test_wide_access_single_bank_cycle(self):
        smem = self._smem()
        result = smem.wide_access(0, nbytes=32)
        assert result.cycles == smem.config.access_latency
        assert result.word_accesses == 8

    def test_wide_access_larger_than_bank_width(self):
        smem = self._smem()
        result = smem.wide_access(0, nbytes=64)
        assert result.cycles == smem.config.access_latency + 1

    def test_streaming_cycles(self):
        smem = self._smem()
        assert smem.streaming_cycles(128, ports=4) == 1
        assert smem.streaming_cycles(0) == 0

    def test_counters_track_requesters(self):
        smem = self._smem()
        smem.simt_access([0, 4])
        smem.wide_access(0x8000, 32)
        assert smem.counters["smem.core.read_words"] == 2
        assert smem.counters["smem.matrix.read_words"] == 8

    def test_contention_factor(self):
        smem = self._smem()
        assert smem.contention_factor(2) == 1.0
        assert smem.contention_factor(8) == 2.0


class TestInterconnect:
    def test_matrix_request_priority(self):
        smem = BankedSharedMemory(SharedMemoryConfig())
        interconnect = SharedMemoryInterconnect(smem)
        bundle = RequestBundle(
            simt_read_addresses=[0x0, 0x4],
            matrix_reads=[(0x0, 32)],
        )
        result = interconnect.arbitrate(bundle)
        assert result.matrix_requests_served == 1
        assert result.simt_retries == 2  # same bank as the matrix read

    def test_disjoint_banks_no_retries(self):
        smem = BankedSharedMemory(SharedMemoryConfig())
        interconnect = SharedMemoryInterconnect(smem)
        bundle = RequestBundle(
            simt_read_addresses=[0x8000, 0x8004],
            matrix_reads=[(0x0, 32)],
        )
        result = interconnect.arbitrate(bundle)
        assert result.simt_retries == 0

    def test_separate_read_write_paths(self):
        smem = BankedSharedMemory(SharedMemoryConfig())
        interconnect = SharedMemoryInterconnect(smem)
        bundle = RequestBundle(
            simt_write_addresses=[0x0],
            matrix_reads=[(0x0, 32)],
        )
        result = interconnect.arbitrate(bundle)
        assert result.simt_retries == 0  # writes use a separate path

    def test_empty_bundle(self):
        smem = BankedSharedMemory(SharedMemoryConfig())
        result = SharedMemoryInterconnect(smem).arbitrate(RequestBundle())
        assert result.cycles == 0

    def test_concurrent_stream_stretching(self):
        smem = BankedSharedMemory(SharedMemoryConfig())
        interconnect = SharedMemoryInterconnect(smem)
        no_stretch = interconnect.concurrent_stream_cycles(1000, 1000, duration_hint=1000)
        assert no_stretch == 1000
        stretched = interconnect.concurrent_stream_cycles(200_000, 200_000, duration_hint=1000)
        assert stretched > 1000


class TestDmaEngine:
    def _dma(self):
        dram = DramChannel(DramConfig())
        smem = BankedSharedMemory(SharedMemoryConfig())
        return DmaEngine(DmaConfig(), dram, smem)

    def test_transfer_cycles_include_programming(self):
        dma = self._dma()
        assert dma.transfer_cycles(0) == dma.config.program_latency
        assert dma.transfer_cycles(3200) > 100

    def test_execute_counts_traffic(self):
        dma = self._dma()
        counters = Counters()
        dma.execute(DmaDirection.GLOBAL_TO_SHARED, 4096, counters)
        assert counters["dma.bytes"] == 4096
        assert counters["dram.bytes"] == 4096
        assert dma.shared_memory.counters["smem.dma.write_words"] == 1024

    def test_accumulator_store_direction(self):
        dma = self._dma()
        counters = Counters()
        dma.execute(DmaDirection.ACCUM_TO_GLOBAL, 1024, counters)
        assert counters["accum.read_words"] == 256

    def test_missing_dma_rejected(self):
        with pytest.raises(ValueError):
            DmaEngine(DmaConfig(present=False), DramChannel(DramConfig()))

    def test_effective_bandwidth(self):
        dma = self._dma()
        counters = Counters()
        dma.execute(DmaDirection.GLOBAL_TO_SHARED, 32 * 1024, counters)
        assert 0 < dma.effective_bandwidth() <= dma.config.bytes_per_cycle
