"""Tests for the heterogeneous multi-matrix-unit experiment (Section 6.3)."""

import pytest

from repro.config.presets import virgo
from repro.config.soc import DataType
from repro.kernels.heterogeneous import (
    HeterogeneousResult,
    heterogeneous_summary,
    simulate_heterogeneous,
)


@pytest.fixture(scope="module")
def result() -> HeterogeneousResult:
    return simulate_heterogeneous()


class TestHeterogeneous:
    def test_total_capacity(self, result):
        """A full 16x16 unit plus a half-size 8x8 unit share the cluster."""
        assert result.total_macs_per_cycle == 256 + 64
        assert result.small_macs_per_cycle == 64

    def test_parallel_faster_than_serial(self, result):
        assert result.parallel_cycles < result.serial_cycles
        assert result.parallel_speedup > 1.2

    def test_parallel_utilization_close_to_serial(self, result):
        """Section 6.3: running both GEMMs in parallel preserves utilization."""
        assert abs(result.parallel_utilization - result.serial_utilization) < 0.15

    def test_utilizations_in_band(self, result):
        assert 0.45 <= result.parallel_utilization <= 0.80
        assert 0.45 <= result.serial_utilization <= 0.85

    def test_power_per_flop_increase_is_minimal(self, result):
        """Section 6.3: only a small power/FLOP overhead when run in parallel (paper 4.3%)."""
        increase = result.power_per_flop_increase()
        assert 0.0 <= increase < 0.10

    def test_summary_keys(self, result):
        summary = heterogeneous_summary(result)
        assert set(summary) == {
            "parallel_utilization_percent",
            "serial_utilization_percent",
            "power_per_flop_increase_percent",
            "parallel_speedup",
        }

    def test_custom_sizes(self):
        small = simulate_heterogeneous(large_size=128, small_size=64)
        assert small.large_cycles > small.small_cycles

    def test_requires_disaggregated_design(self, volta_design):
        with pytest.raises(ValueError):
            simulate_heterogeneous(base_design=volta_design)

    def test_fp32_base_design(self):
        result = simulate_heterogeneous(base_design=virgo(DataType.FP32))
        assert result.total_macs_per_cycle == 64 + 16
