"""Tests for the core-coupled tensor core models (Volta/Ampere and Hopper styles)."""

import numpy as np
import pytest

from repro.config.soc import DataType
from repro.isa.instructions import OpClass
from repro.sim.stats import Counters
from repro.tensorcore.dot_product_unit import DotProductUnit
from repro.tensorcore.fragments import MatrixFragment, load_fragment, store_fragment
from repro.tensorcore.hopper import HopperTensorCore
from repro.tensorcore.volta import VoltaTensorCore


class TestFragments:
    def test_fragment_shape_and_bytes(self, rng):
        data = rng.standard_normal((8, 16))
        fragment = MatrixFragment(data=data, dtype=DataType.FP16)
        assert fragment.rows == 8 and fragment.cols == 16
        assert fragment.bytes == 8 * 16 * 2
        assert fragment.register_words == 64

    def test_load_fragment_extracts_correct_slice(self, rng):
        matrix = rng.standard_normal((32, 32)).astype(np.float32)
        fragment = load_fragment(matrix, 8, 16, 8, 8, DataType.FP32)
        np.testing.assert_allclose(fragment.data, matrix[8:16, 16:24])

    def test_load_fragment_out_of_bounds(self, rng):
        matrix = rng.standard_normal((16, 16))
        with pytest.raises(IndexError):
            load_fragment(matrix, 12, 0, 8, 8)

    def test_store_fragment_roundtrip(self, rng):
        matrix = np.zeros((16, 16), dtype=np.float32)
        fragment = MatrixFragment(data=rng.standard_normal((8, 8)), dtype=DataType.FP32)
        store_fragment(matrix, fragment, 4, 4)
        np.testing.assert_allclose(matrix[4:12, 4:12], fragment.data)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            MatrixFragment(data=np.zeros(8))


class TestDotProductUnit:
    def test_functional_correctness(self, rng):
        dpu = DotProductUnit(macs_per_cycle=32, dtype=DataType.FP32)
        a = rng.standard_normal((8, 16)).astype(np.float32)
        b = rng.standard_normal((16, 8)).astype(np.float32)
        c = rng.standard_normal((8, 8)).astype(np.float32)
        result = dpu.multiply_accumulate(a, b, c)
        np.testing.assert_allclose(result, a @ b + c, rtol=1e-5)

    def test_fp16_quantization_applied(self, rng):
        dpu = DotProductUnit(macs_per_cycle=32, dtype=DataType.FP16)
        a = rng.standard_normal((8, 16)).astype(np.float32)
        b = rng.standard_normal((16, 8)).astype(np.float32)
        c = np.zeros((8, 8), dtype=np.float32)
        result = dpu.multiply_accumulate(a, b, c)
        expected = a.astype(np.float16).astype(np.float32) @ b.astype(np.float16).astype(np.float32)
        np.testing.assert_allclose(result, expected, rtol=1e-6)

    def test_shape_mismatch_rejected(self, rng):
        dpu = DotProductUnit(macs_per_cycle=32)
        with pytest.raises(ValueError):
            dpu.multiply_accumulate(np.zeros((8, 4)), np.zeros((8, 4)), np.zeros((8, 4)))

    def test_cycles_for_tile(self):
        dpu = DotProductUnit(macs_per_cycle=32)
        assert dpu.cycles_for_tile(8, 8, 16) == 32

    def test_mac_counting(self, rng):
        dpu = DotProductUnit(macs_per_cycle=32)
        counters = Counters()
        dpu.multiply_accumulate(
            np.zeros((8, 16)), np.zeros((16, 8)), np.zeros((8, 8)), counters
        )
        assert counters["matrix_unit.pe.macs"] == 1024
        assert dpu.total_macs == 1024


class TestVoltaTensorCore:
    def _unit(self, volta_design):
        return VoltaTensorCore(volta_design.matrix_unit)

    def test_mma_correctness(self, volta_design, rng):
        unit = self._unit(volta_design)
        a = load_fragment(rng.standard_normal((8, 16)), 0, 0, 8, 16)
        b = load_fragment(rng.standard_normal((16, 8)), 0, 0, 16, 8)
        c = np.zeros((8, 8), dtype=np.float32)
        result = unit.mma(a, b, c)
        expected = a.as_float32() @ b.as_float32()
        np.testing.assert_allclose(result, expected, rtol=1e-3, atol=1e-3)

    def test_wrong_fragment_shape_rejected(self, volta_design, rng):
        unit = self._unit(volta_design)
        a = load_fragment(rng.standard_normal((16, 16)), 0, 0, 16, 16)
        b = load_fragment(rng.standard_normal((16, 8)), 0, 0, 16, 8)
        with pytest.raises(ValueError):
            unit.mma(a, b, np.zeros((8, 8), dtype=np.float32))

    def test_hmma_sequence_matches_paper_timing(self, volta_design):
        """16 steps x 2 cycles = 32 busy cycles per 8x8x16 tile (1024 MACs at 32/cycle)."""
        unit = self._unit(volta_design)
        sequence = unit.hmma_sequence()
        assert sequence.steps == 16
        assert sequence.matrix_unit_busy_cycles == 32
        assert unit.tile_busy_cycles() == 32

    def test_hmma_instruction_expansion(self, volta_design):
        unit = self._unit(volta_design)
        instructions = unit.hmma_sequence().as_instructions()
        classes = [instruction.op_class for instruction in instructions]
        assert classes.count(OpClass.HMMA_SET) == 4
        assert classes.count(OpClass.HMMA_STEP) == 16

    def test_tile_events_include_register_file_traffic(self, volta_design):
        """Tightly-coupled: operands AND accumulators move through the RF."""
        unit = self._unit(volta_design)
        counters = Counters()
        unit.record_tile_events(counters)
        assert counters["core.issue.rf_read_words"] > 0
        assert counters["core.writeback.rf_write_words"] > 0
        assert counters["matrix_unit.operand_buffer_words"] > 0

    def test_gemm_tile_count(self, volta_design):
        unit = self._unit(volta_design)
        assert unit.gemm_tile_count(256, 256, 256) == 32 * 32 * 16


class TestHopperTensorCore:
    def _unit(self, hopper_design):
        return HopperTensorCore(hopper_design.matrix_unit, hopper_design.cluster.shared_memory)

    def test_wgmma_correctness(self, hopper_design, rng):
        unit = self._unit(hopper_design)
        a = load_fragment(rng.standard_normal((16, 32)), 0, 0, 16, 32, location="shared")
        b = load_fragment(rng.standard_normal((32, 16)), 0, 0, 32, 16, location="shared")
        c = rng.standard_normal((16, 16)).astype(np.float32)
        result = unit.wgmma(a, b, c)
        expected = a.as_float32() @ b.as_float32() + c
        np.testing.assert_allclose(result, expected, rtol=1e-3, atol=1e-3)

    def test_tile_operation_overlaps_operand_fetch(self, hopper_design):
        unit = self._unit(hopper_design)
        operation = unit.tile_operation()
        assert operation.compute_cycles == 16 * 16 * 32 // 64
        # The exposed latency is much smaller than a serial fetch + compute.
        assert operation.total_cycles < operation.compute_cycles + operation.smem_read_cycles

    def test_async_instruction_interface(self, hopper_design):
        instructions = self._unit(hopper_design).instruction_sequence()
        classes = [instruction.op_class for instruction in instructions]
        assert classes == [OpClass.WGMMA_INIT, OpClass.WGMMA_WAIT]

    def test_tile_events_offload_operands_but_not_accumulator(self, hopper_design):
        """Operands come from shared memory; accumulator still hits the RF."""
        unit = self._unit(hopper_design)
        counters = Counters()
        unit.record_tile_events(counters)
        assert counters["smem.matrix.read_words"] > 0
        assert counters["core.issue.rf_read_words"] > 0  # accumulator read
        assert counters["core.issue.rf_read_words"] < counters["smem.matrix.read_words"]

    def test_fewer_instructions_than_volta_per_mac(self, volta_design, hopper_design):
        volta_unit = VoltaTensorCore(volta_design.matrix_unit)
        hopper_unit = self._unit(hopper_design)
        volta_instr_per_mac = (
            volta_unit.hmma_sequence().instructions / volta_design.matrix_unit.tile_macs
        )
        hopper_instr_per_mac = (
            len(hopper_unit.instruction_sequence()) / hopper_design.matrix_unit.tile_macs
        )
        assert hopper_instr_per_mac < volta_instr_per_mac / 10
