"""Tests for the ablation analyses, multi-cluster scaling and the CLI."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.analysis.ablations import (
    accumulator_placement_ablation,
    async_interface_ablation,
    granularity_ablation,
    run_all_ablations,
    unified_unit_ablation,
)
from repro.config.presets import DesignKind, make_design, virgo
from repro.config.soc import DataType
from repro.kernels.gemm import simulate_gemm
from repro.runner import run_gemm


class TestAblations:
    def test_granularity_monotonic(self):
        results = granularity_ablation(size=256)
        utils = [entry["mac_utilization_percent"] for entry in results]
        assert utils[0] >= utils[-1]
        instructions = [entry["retired_instructions"] for entry in results]
        assert instructions[-1] > instructions[0]

    def test_accumulator_placement_costs_energy(self):
        result = accumulator_placement_ablation(size=256)
        assert result["accumulator_in_rf_class_storage_uj"] > result["accumulator_in_sram_uj"]
        assert 0 < result["energy_increase_percent"] < 50

    def test_unified_unit_reduces_footprint(self):
        result = unified_unit_ablation()
        assert result["per_core_mib"] == pytest.approx(4.0, rel=0.05)
        assert result["unified_mib"] == pytest.approx(2.25, rel=0.05)
        assert result["footprint_increase_percent"] > 50

    def test_async_interface_wins(self):
        result = async_interface_ablation(size=256)
        assert (
            result["asynchronous_utilization_percent"]
            > result["synchronous_utilization_percent"]
        )

    def test_run_all_bundle(self):
        bundle = run_all_ablations()
        assert set(bundle) == {
            "granularity",
            "accumulator_placement",
            "unified_unit",
            "async_interface",
        }


class TestMultiCluster:
    def test_two_clusters_halve_runtime(self):
        from dataclasses import replace

        single = make_design(DesignKind.VIRGO)
        dual = replace(single, soc=replace(single.soc, clusters=2))
        one = simulate_gemm(single, 1024)
        two = simulate_gemm(dual, 1024)
        assert two.total_cycles < 0.6 * one.total_cycles
        # Utilization stays comparable: the ideal also doubles.
        assert abs(two.mac_utilization - one.mac_utilization) < 0.1

    def test_multi_cluster_energy_unchanged(self):
        """The same total work is done, so active energy stays ~constant."""
        from dataclasses import replace

        single = make_design(DesignKind.VIRGO)
        dual = replace(single, soc=replace(single.soc, clusters=2))
        one = run_gemm(single, 512)
        two = run_gemm(dual, 512)
        assert two.active_energy_uj == pytest.approx(one.active_energy_uj, rel=0.05)

    def test_multi_cluster_for_core_coupled_design(self):
        from dataclasses import replace

        single = make_design(DesignKind.HOPPER)
        quad = replace(single, soc=replace(single.soc, clusters=4))
        result = simulate_gemm(quad, 1024)
        assert result.mac_utilization > 0.5


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gemm_command(self, capsys):
        assert main(["gemm", "--design", "virgo", "--size", "256"]) == 0
        output = capsys.readouterr().out
        assert "Virgo" in output and "MAC util" in output

    def test_gemm_all_designs(self, capsys):
        main(["gemm", "--all-designs", "--size", "256"])
        output = capsys.readouterr().out
        for name in ("Volta-style", "Ampere-style", "Hopper-style", "Virgo"):
            assert name in output

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            main(["gemm", "--design", "blackwell"])

    def test_table_command(self, capsys):
        main(["table", "--number", "4"])
        data = json.loads(capsys.readouterr().out)
        assert "Disaggregated" in data

    def test_invalid_table_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "--number", "9"])

    def test_hetero_command(self, capsys):
        main(["hetero"])
        data = json.loads(capsys.readouterr().out)
        assert "parallel_utilization_percent" in data

    def test_figure_command(self, capsys):
        main(["figure", "--number", "7"])
        data = json.loads(capsys.readouterr().out)
        assert "Virgo" in data

    def test_flash_command(self, capsys):
        main(["flash"])
        output = capsys.readouterr().out
        assert "FlashAttention-3" in output


class TestFp32Designs:
    @pytest.mark.parametrize("kind", list(DesignKind))
    def test_fp32_gemm_all_designs(self, kind):
        result = simulate_gemm(kind, 256, DataType.FP32)
        assert 0.1 < result.mac_utilization <= 1.0

    def test_fp32_virgo_macs(self):
        design = virgo(DataType.FP32)
        assert design.cluster.total_macs_per_cycle == 64
