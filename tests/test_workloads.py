"""Tests for the model-workloads subsystem: IR, zoo, lowering, execution."""

import json

import pytest

from repro.config.presets import DesignKind, make_design
from repro.config.soc import DataType
from repro.runner import run_flash_attention, run_gemm, to_json
from repro.workloads import (
    AttentionLayer,
    ElementwiseLayer,
    LayerGraph,
    LinearLayer,
    ModelSpec,
    NormLayer,
    TensorShape,
    build_model,
    lower_graph,
    model_names,
    resolve_spec,
    run_model,
    scaled_spec,
)
from repro.workloads.models import MODEL_ZOO
from repro.workloads.lowering import (
    MATRIX_RESOURCE,
    SIMT_RESOURCE,
    SMALL_MATRIX_RESOURCE,
    execute_schedule,
)


class TestLayerGraphIR:
    def test_shape_inference_through_linear_chain(self):
        graph = LayerGraph("chain", TensorShape(batch=2, seq=8, features=16))
        graph.add(LinearLayer(name="fc1", in_features=16, out_features=32))
        graph.add(LinearLayer(name="fc2", deps=("fc1",), in_features=32, out_features=4))
        assert graph.output_shape("fc1") == TensorShape(2, 8, 32)
        assert graph.output_shape("fc2") == TensorShape(2, 8, 4)

    def test_linear_feature_mismatch_rejected(self):
        graph = LayerGraph("bad", TensorShape(batch=1, seq=4, features=16))
        with pytest.raises(ValueError, match="expects 8 input features"):
            graph.add(LinearLayer(name="fc", in_features=8, out_features=8))

    def test_dependency_must_exist(self):
        graph = LayerGraph("bad", TensorShape(batch=1, seq=4, features=8))
        with pytest.raises(ValueError, match="unknown layer"):
            graph.add(LinearLayer(name="fc", deps=("ghost",), in_features=8, out_features=8))

    def test_duplicate_layer_rejected(self):
        graph = LayerGraph("dup", TensorShape(batch=1, seq=4, features=8))
        graph.add(NormLayer(name="ln"))
        with pytest.raises(ValueError, match="duplicate"):
            graph.add(NormLayer(name="ln"))

    def test_attention_shape_and_head_validation(self):
        graph = LayerGraph("attn", TensorShape(batch=1, seq=64, features=128))
        layer = AttentionLayer(name="attn", heads=2, head_dim=64)
        graph.add(layer)
        assert graph.output_shape("attn").features == 128
        with pytest.raises(ValueError, match="divisible"):
            AttentionLayer(name="bad", heads=3, head_dim=32, kv_heads=2)

    def test_causal_score_macs_exact_triangle(self):
        # A full causal mask keeps (seq+1)/(2*seq) of the rectangle -- the
        # exact triangle count seq*(seq+1)/2 per head, not the old 0.5.
        shape = TensorShape(batch=1, seq=64, features=128)
        full = AttentionLayer(name="full", heads=2, head_dim=64, causal=False)
        masked = AttentionLayer(name="masked", heads=2, head_dim=64, causal=True)
        triangle = 64 * 65 // 2
        assert masked.score_macs(shape) == 2 * 2 * triangle * 64
        assert masked.score_macs(shape) * (2 * 64) == full.score_macs(shape) * 65
        assert masked.causal_work_fraction(shape) == 65 / 128

    def test_elementwise_mismatched_inputs_rejected(self):
        graph = LayerGraph("ew", TensorShape(batch=1, seq=4, features=8))
        graph.add(LinearLayer(name="fc", in_features=8, out_features=16))
        graph.add(NormLayer(name="ln"))
        with pytest.raises(ValueError, match="mismatched"):
            graph.add(ElementwiseLayer(name="add", deps=("fc", "ln")))

    def test_total_macs_counts_linear_and_attention(self):
        graph = LayerGraph("mix", TensorShape(batch=1, seq=64, features=128))
        graph.add(LinearLayer(name="fc", in_features=128, out_features=128))
        graph.add(AttentionLayer(name="attn", deps=("fc",), heads=2, head_dim=64))
        expected = 64 * 128 * 128 + 2 * 2 * 64 * 64 * 64
        assert graph.total_macs() == expected


class TestModelZoo:
    def test_zoo_names_resolve_and_build(self):
        for name in model_names():
            graph = build_model(name)
            assert len(graph) > 0

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="gpt-prefill"):
            resolve_spec("nope")

    def test_gpt_prefill_vs_decode_shapes(self):
        prefill = build_model("gpt-prefill")
        decode = build_model("gpt-decode")
        assert prefill.input_shape.seq == 256
        assert decode.input_shape.seq == 1  # single-query decode step
        attn = next(l for l in decode.layers() if l.name == "block0.attn")
        assert attn.kv_seq == 1024  # attends over the KV cache

    def test_gqa_shrinks_qkv_projection(self):
        mha = resolve_spec("gpt-prefill")
        gqa = resolve_spec("gpt-gqa-prefill")
        assert gqa.qkv_features < mha.qkv_features
        assert gqa.qkv_features == (8 + 2 * 2) * gqa.head_dim

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            ModelSpec(hidden=100, heads=3)

    def test_scaled_spec_override(self):
        spec = scaled_spec(resolve_spec("gpt-prefill"), blocks=5)
        assert spec.blocks == 5
        assert spec.hidden == resolve_spec("gpt-prefill").hidden


class TestLowering:
    def test_schedule_is_dependency_ordered(self):
        schedule = lower_graph(build_model("gpt-prefill"), DesignKind.VIRGO)
        seen = set()
        for invocation in schedule.invocations:
            for dep in invocation.deps:
                assert dep == "" or dep in seen
            seen.add(invocation.name)

    def test_fused_attention_on_virgo_and_ampere(self):
        for kind in (DesignKind.VIRGO, DesignKind.AMPERE):
            schedule = lower_graph(build_model("gpt-prefill"), kind)
            kinds = {inv.kind for inv in schedule.invocations}
            assert "flash" in kinds

    def test_attention_decomposes_on_volta_and_hopper(self):
        for kind in (DesignKind.VOLTA, DesignKind.HOPPER):
            schedule = lower_graph(build_model("gpt-prefill"), kind)
            kinds = {inv.kind for inv in schedule.invocations}
            assert "flash" not in kinds
            names = {inv.name for inv in schedule.invocations}
            assert "block0.attn.scores" in names
            assert "block0.attn.softmax" in names
            assert "block0.attn.context" in names

    def test_decode_attention_always_decomposes(self):
        schedule = lower_graph(build_model("gpt-decode"), DesignKind.VIRGO)
        kinds = {inv.kind for inv in schedule.invocations}
        assert "flash" not in kinds

    def test_causal_mask_reaches_fused_workload(self):
        # No work_scale discount anywhere: the mask rides the flash workload
        # itself and its iteration count is the exact visited-tile total.
        schedule = lower_graph(build_model("gpt-prefill"), DesignKind.VIRGO)
        flash = next(inv for inv in schedule.invocations if inv.kind == "flash")
        assert not hasattr(flash, "work_scale")
        assert flash.workload.causal
        spec = MODEL_ZOO["gpt-prefill"]
        triangle = spec.seq_len * (spec.seq_len + 1) // 2
        assert flash.workload.gemm_macs == (
            2 * spec.heads * triangle * spec.head_dim
        )
        assert flash.workload.iterations < (
            spec.heads * (spec.seq_len // 64) ** 2
        )

    def test_zero_cost_layers_lower_to_nothing(self):
        schedule = lower_graph(build_model("gpt-prefill"), DesignKind.VIRGO)
        names = {inv.name for inv in schedule.invocations}
        assert not any("qkv_split" in name for name in names)

    def test_heterogeneous_requires_disaggregated(self):
        with pytest.raises(ValueError, match="disaggregated"):
            lower_graph(build_model("gpt-decode"), DesignKind.AMPERE, heterogeneous=True)

    def test_heterogeneous_routes_small_gemms(self):
        schedule = lower_graph(build_model("gpt-decode"), DesignKind.VIRGO, heterogeneous=True)
        resources = {inv.resource for inv in schedule.invocations}
        assert SMALL_MATRIX_RESOURCE in resources
        assert schedule.small_design is not None
        small = schedule.small_design.matrix_unit
        full = schedule.design.matrix_unit
        assert small.macs_per_cycle < full.macs_per_cycle


class TestExecution:
    def test_model_run_reports_per_layer_metrics(self):
        result = run_model("gpt-prefill", DesignKind.VIRGO)
        assert result.total_cycles > 0
        assert result.layers  # one entry per costed layer
        for layer in result.layers:
            assert layer.cycles > 0
            assert layer.energy_uj > 0
            assert layer.end >= layer.start
        gemm_layers = [l for l in result.layers if "gemm" in l.kinds]
        assert all(l.mac_utilization_percent > 0 for l in gemm_layers)

    def test_phase_aggregation(self):
        result = run_model("gpt-prefill", DesignKind.VIRGO)
        assert set(result.phase_cycles) == {"prefill"}
        assert result.phase_cycles["prefill"] == sum(l.cycles for l in result.layers)

    def test_virgo_beats_baseline_on_prefill(self):
        virgo = run_model("gpt-prefill", DesignKind.VIRGO)
        ampere = run_model("gpt-prefill", DesignKind.AMPERE)
        assert virgo.total_cycles < ampere.total_cycles
        assert virgo.active_energy_uj < ampere.active_energy_uj

    def test_decode_utilization_collapses(self):
        prefill = run_model("gpt-prefill", DesignKind.VIRGO)
        decode = run_model("gpt-decode", DesignKind.VIRGO)
        assert decode.mac_utilization < prefill.mac_utilization / 2

    def test_all_designs_execute_all_models(self):
        spec = scaled_spec(resolve_spec("gpt-prefill"), blocks=1, seq_len=64, hidden=128)
        for kind in DesignKind:
            result = run_model(spec, kind)
            assert result.total_cycles > 0

    def test_schedule_overlap_never_exceeds_serial_sum(self):
        schedule = lower_graph(build_model("mlp-chain"), DesignKind.VIRGO)
        result = execute_schedule(schedule)
        serial = sum(layer.cycles for layer in result.layers)
        assert result.total_cycles <= serial

    def test_heterogeneous_execution_populates_small_resource(self):
        result = run_model("gpt-decode", DesignKind.VIRGO, heterogeneous=True)
        assert result.heterogeneous
        assert result.resource_busy.get(SMALL_MATRIX_RESOURCE, 0) > 0

    def test_model_result_to_dict_round_trips_json(self):
        result = run_model("mlp-chain", DesignKind.VIRGO)
        encoded = json.dumps(result.to_dict(), sort_keys=True)
        decoded = json.loads(encoded)
        assert decoded["total_cycles"] == result.total_cycles
        assert len(decoded["layers"]) == len(result.layers)

    def test_counters_feed_power_report(self):
        result = run_model("mlp-chain", DesignKind.VIRGO)
        assert result.active_power_mw > 0
        assert result.power.cycles == result.total_cycles


class TestRunnerSerializationHelpers:
    def test_gemm_run_result_to_dict(self):
        run = run_gemm(DesignKind.VIRGO, 256)
        encoded = run.to_dict()
        assert encoded["kind"] == "gemm"
        assert encoded["design"] == "Virgo"
        assert encoded["total_cycles"] == run.total_cycles
        json.dumps(encoded)

    def test_flash_run_result_to_dict(self):
        run = run_flash_attention(DesignKind.VIRGO)
        encoded = run.to_dict()
        assert encoded["kind"] == "flash_attention"
        assert encoded["seq_len"] == 1024
        json.dumps(encoded)

    def test_to_json_helper_is_canonical(self):
        run = run_gemm(DesignKind.VOLTA, 256)
        text = to_json(run)
        assert json.loads(text) == json.loads(to_json(run))
        assert json.loads(text)["design"] == "Volta-style"

    def test_model_resources_used(self):
        result = run_model("gpt-prefill", DesignKind.VIRGO)
        assert result.resource_busy[MATRIX_RESOURCE] > 0
        assert result.resource_busy[SIMT_RESOURCE] > 0
