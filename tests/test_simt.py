"""Tests for the SIMT core models: warps, schedulers, issue simulator, core events."""

import pytest

from repro.config.soc import CoreConfig, DataType, RegisterFileConfig
from repro.isa.instructions import Instruction, OpClass
from repro.isa.program import WarpProgram
from repro.simt.core import VortexCore
from repro.simt.issue import IssueSimulator
from repro.simt.register_file import (
    RegisterAllocationError,
    RegisterFile,
    max_tile_for_register_space,
)
from repro.simt.scheduler import GreedyThenOldestScheduler, RoundRobinScheduler
from repro.simt.warp import WarpState


def _program(op_class, count, **kwargs):
    return WarpProgram().emit_class(op_class, repeat=count, **kwargs)


class TestWarpState:
    def test_eligibility_and_advance(self):
        warp = WarpState(warp_id=0, program=[Instruction(op_class=OpClass.ALU)])
        assert warp.eligible(0)
        warp.advance(0)
        assert warp.done
        assert not warp.eligible(1)

    def test_blocking(self):
        warp = WarpState(warp_id=0, program=[Instruction(op_class=OpClass.ALU)] * 2)
        warp.block(10)
        assert not warp.eligible(5)
        assert warp.eligible(10)

    def test_advance_past_end_raises(self):
        warp = WarpState(warp_id=0, program=[])
        with pytest.raises(IndexError):
            warp.peek()


class TestSchedulers:
    def _warps(self, count):
        return [
            WarpState(warp_id=index, program=[Instruction(op_class=OpClass.ALU)] * 4)
            for index in range(count)
        ]

    def test_round_robin_rotates(self):
        warps = self._warps(3)
        scheduler = RoundRobinScheduler()
        picks = []
        for cycle in range(3):
            warp = scheduler.select(warps, cycle)
            warp.advance(cycle)
            picks.append(warp.warp_id)
        assert picks == [0, 1, 2]

    def test_round_robin_skips_blocked(self):
        warps = self._warps(2)
        warps[0].block(100)
        scheduler = RoundRobinScheduler()
        assert scheduler.select(warps, 0).warp_id == 1

    def test_round_robin_returns_none_when_all_blocked(self):
        warps = self._warps(2)
        for warp in warps:
            warp.block(100)
        assert RoundRobinScheduler().select(warps, 0) is None

    def test_gto_sticks_to_current_warp(self):
        warps = self._warps(3)
        scheduler = GreedyThenOldestScheduler()
        first = scheduler.select(warps, 0)
        first.advance(0)
        second = scheduler.select(warps, 1)
        assert second.warp_id == first.warp_id


class TestIssueSimulator:
    def test_single_warp_alu_throughput(self):
        core = CoreConfig()
        simulator = IssueSimulator(core)
        result = simulator.simulate([_program(OpClass.ALU, 100)])
        assert result.instructions_issued == 100
        assert result.cycles == 100  # one per cycle, no stalls

    def test_multithreading_hides_load_latency(self):
        """With more warps the same per-warp stream finishes in fewer cycles/warp."""
        core = CoreConfig()
        simulator = IssueSimulator(core)
        program = WarpProgram()
        for _ in range(10):
            program.emit_class(OpClass.LOAD_SHARED, bytes_accessed=32)
            program.emit_class(OpClass.FPU)
        single = simulator.simulate([program])
        multi = IssueSimulator(core).simulate([program] * 4)
        assert multi.cycles < 4 * single.cycles

    def test_tensor_unit_structural_hazard(self):
        """HMMA steps from many warps serialize on the single tensor core."""
        core = CoreConfig()
        program = _program(OpClass.HMMA_STEP, 8)
        result = IssueSimulator(core).simulate([program] * 4)
        # 32 steps x 2 cycles of tensor occupancy keep the unit busy 64 cycles,
        # so issue stretches to (just under) that occupancy despite 4 warps.
        assert result.unit_busy_cycles["tensor"] == 64
        assert result.cycles >= 62

    def test_ipc_bounded_by_one(self):
        result = IssueSimulator(CoreConfig()).simulate([_program(OpClass.ALU, 50)] * 4)
        assert result.ipc <= 1.0 + 1e-9

    def test_too_many_warps_rejected(self):
        core = CoreConfig(warps=2)
        with pytest.raises(ValueError):
            IssueSimulator(core).simulate([_program(OpClass.ALU, 1)] * 3)

    def test_empty_input(self):
        result = IssueSimulator(CoreConfig()).simulate([])
        assert result.cycles == 0

    def test_issued_by_class_accounting(self):
        program = WarpProgram()
        program.emit_class(OpClass.ALU, repeat=3)
        program.emit_class(OpClass.FPU, repeat=2)
        result = IssueSimulator(CoreConfig()).simulate([program])
        assert result.issued_by_class[OpClass.ALU] == 3
        assert result.issued_by_class[OpClass.FPU] == 2

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            IssueSimulator(CoreConfig(), scheduler="magic").simulate([_program(OpClass.ALU, 1)])

    def test_gto_scheduler_works(self):
        result = IssueSimulator(CoreConfig(), scheduler="gto").simulate(
            [_program(OpClass.ALU, 10)] * 2
        )
        assert result.instructions_issued == 20


class TestVortexCore:
    def test_execute_counts_issue_events(self):
        core = VortexCore(CoreConfig())
        result = core.execute([_program(OpClass.ALU, 10)])
        assert result.counters["core.issue.instructions"] == 10
        assert result.counters["core.alu.ops"] == 10 * 8  # per-lane

    def test_memory_instructions_feed_lsu_and_smem(self):
        core = VortexCore(CoreConfig())
        program = _program(OpClass.LOAD_SHARED, 4, bytes_accessed=32)
        counters = core.count_events([program])
        assert counters["core.lsu.requests"] == 4
        assert counters["smem.core_words"] == 4 * 8

    def test_global_loads_touch_l1(self):
        core = VortexCore(CoreConfig())
        counters = core.count_events([_program(OpClass.LOAD_GLOBAL, 2, bytes_accessed=64)])
        assert counters["l1.requests"] == 2
        assert counters["l1.bytes"] == 128

    def test_register_traffic_scales_with_lanes(self):
        core = VortexCore(CoreConfig(lanes=8))
        counters = core.count_events(
            [WarpProgram().emit_class(OpClass.FPU, repeat=1, reg_reads=3, reg_writes=1)]
        )
        assert counters["core.issue.rf_read_words"] == 24
        assert counters["core.writeback.rf_write_words"] == 8

    def test_issue_cycles_helper(self):
        core = VortexCore(CoreConfig())
        assert core.issue_cycles([_program(OpClass.ALU, 10)]) == 10


class TestRegisterFile:
    def test_allocation_within_budget(self):
        rf = RegisterFile(RegisterFileConfig(), warps=8)
        rf.allocate(0, "a_frag", 256)
        rf.allocate(0, "b_frag", 256)
        assert rf.free_bytes(0) == 1024 - 512

    def test_over_allocation_raises(self):
        rf = RegisterFile(RegisterFileConfig(), warps=8)
        with pytest.raises(RegisterAllocationError):
            rf.allocate(0, "too_big", 2048)

    def test_warps_are_isolated(self):
        rf = RegisterFile(RegisterFileConfig(), warps=8)
        rf.allocate(0, "x", 1024)
        rf.allocate(1, "x", 1024)  # a different warp's slice

    def test_release(self):
        rf = RegisterFile(RegisterFileConfig(), warps=8)
        rf.allocate(0, "x", 512)
        rf.release(0, "x")
        assert rf.free_bytes(0) == 1024

    def test_release_missing_raises(self):
        rf = RegisterFile(RegisterFileConfig(), warps=8)
        with pytest.raises(KeyError):
            rf.release(0, "missing")


class TestMaxTileDerivation:
    def test_tightly_coupled_tile_is_8x8x16(self):
        """1 KiB per warp with operands + accumulator in the RF -> 8x8x16 (Section 5.1.1)."""
        tile = max_tile_for_register_space(
            1024, DataType.FP16, operands_in_register_file=True, accumulator_in_register_file=True
        )
        assert tile == (8, 8, 16)

    def test_operand_decoupled_tile_is_16x16x32(self):
        """Only the accumulator in the RF -> 16x16x32 (Section 5.1.3)."""
        tile = max_tile_for_register_space(
            1024, DataType.FP16, operands_in_register_file=False, accumulator_in_register_file=True
        )
        assert tile == (16, 16, 32)

    def test_disaggregated_unbounded_by_register_file(self):
        tile = max_tile_for_register_space(
            1024,
            DataType.FP16,
            operands_in_register_file=False,
            accumulator_in_register_file=False,
        )
        assert tile[0] >= 128

    def test_invalid_budget_raises(self):
        with pytest.raises(ValueError):
            max_tile_for_register_space(0, DataType.FP16, True, True)
