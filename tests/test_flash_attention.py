"""Tests for the FlashAttention-3 kernel: functional numerics and both mappings."""

import numpy as np
import pytest

from repro.config.presets import DesignKind
from repro.kernels.flash_attention import (
    AmpereFlashAttentionKernel,
    FlashAttentionWorkload,
    VirgoFlashAttentionKernel,
    attention_reference,
    flash_attention_reference,
    simulate_flash_attention,
    taylor_exp,
)


class TestTaylorExp:
    def test_accurate_near_zero(self):
        x = np.linspace(-0.5, 0.0, 32)
        np.testing.assert_allclose(taylor_exp(x), np.exp(x), rtol=0.05)

    def test_never_negative(self):
        x = np.linspace(-10.0, 0.0, 64)
        assert (taylor_exp(x) >= 0).all()

    def test_higher_order_more_accurate(self):
        x = np.linspace(-1.0, 0.0, 16)
        err2 = np.abs(taylor_exp(x, order=2) - np.exp(x)).max()
        err4 = np.abs(taylor_exp(x, order=4) - np.exp(x)).max()
        assert err4 < err2


class TestFunctionalFlashAttention:
    def test_matches_exact_attention(self, rng):
        q = rng.standard_normal((128, 64)).astype(np.float32)
        k = rng.standard_normal((128, 64)).astype(np.float32)
        v = rng.standard_normal((128, 64)).astype(np.float32)
        blocked = flash_attention_reference(q, k, v, block_q=32, block_kv=32)
        exact = attention_reference(q, k, v)
        np.testing.assert_allclose(blocked, exact, rtol=1e-4, atol=1e-4)

    def test_block_size_invariance(self, rng):
        q = rng.standard_normal((64, 32)).astype(np.float32)
        k = rng.standard_normal((96, 32)).astype(np.float32)
        v = rng.standard_normal((96, 32)).astype(np.float32)
        small = flash_attention_reference(q, k, v, block_q=16, block_kv=16)
        large = flash_attention_reference(q, k, v, block_q=64, block_kv=96)
        np.testing.assert_allclose(small, large, rtol=1e-4, atol=1e-4)

    def test_taylor_exp_approximation_close(self, rng):
        """The 2nd-order Taylor substitution stays close to exact attention."""
        q = 0.3 * rng.standard_normal((64, 64)).astype(np.float32)
        k = 0.3 * rng.standard_normal((64, 64)).astype(np.float32)
        v = rng.standard_normal((64, 64)).astype(np.float32)
        approx = flash_attention_reference(q, k, v, use_taylor_exp=True)
        exact = attention_reference(q, k, v)
        assert np.abs(approx - exact).max() < 0.35

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            flash_attention_reference(
                rng.standard_normal((8, 4)),
                rng.standard_normal((8, 6)),
                rng.standard_normal((8, 6)),
            )


class TestWorkload:
    def test_paper_workload_defaults(self):
        workload = FlashAttentionWorkload()
        assert workload.seq_len == 1024 and workload.head_dim == 64
        assert workload.gemm_macs == 2 * 1024 * 1024 * 64
        assert workload.iterations == 16 * 16

    def test_softmax_elements(self):
        assert FlashAttentionWorkload(seq_len=256).softmax_elements == 256 * 256


class TestMappings:
    @pytest.fixture(scope="class")
    def virgo_result(self):
        return simulate_flash_attention(DesignKind.VIRGO)

    @pytest.fixture(scope="class")
    def ampere_result(self):
        return simulate_flash_attention(DesignKind.AMPERE)

    def test_virgo_utilization_higher(self, virgo_result, ampere_result):
        """Section 6.2: Virgo 65.7% vs Ampere-style 35.1% MAC utilization."""
        assert virgo_result.mac_utilization > ampere_result.mac_utilization
        assert virgo_result.mac_utilization / ampere_result.mac_utilization > 1.4

    def test_utilizations_in_plausible_band(self, virgo_result, ampere_result):
        assert 0.55 <= virgo_result.mac_utilization <= 0.95
        assert 0.25 <= ampere_result.mac_utilization <= 0.60

    def test_fence_overhead_small(self, virgo_result):
        """Section 4.5.1: fence polling is a small fraction of runtime (~2.4%)."""
        assert virgo_result.fence_poll_cycles_avg == pytest.approx(260)
        assert virgo_result.fence_overhead_fraction < 0.08

    def test_energy_reduction(self, virgo_result, ampere_result):
        """Figure 12: Virgo reduces FlashAttention energy (paper: 50.6%)."""
        from repro.energy.model import EnergyTable

        virgo_energy = EnergyTable.for_design(virgo_result.design.style).energy_picojoules(
            virgo_result.counters
        )
        ampere_energy = EnergyTable.for_design(ampere_result.design.style).energy_picojoules(
            ampere_result.counters
        )
        reduction = 1.0 - virgo_energy / ampere_energy
        assert reduction > 0.40

    def test_virgo_softmax_overlapped(self, virgo_result):
        """The SIMT softmax pipe is shorter than the matrix pipe, so it hides."""
        assert virgo_result.phase_cycles["softmax"] < virgo_result.phase_cycles["matrix"]

    def test_counters_have_energy_assignments(self, virgo_result, ampere_result):
        from repro.energy.model import EnergyTable

        table = EnergyTable()
        assert table.unknown_counters(virgo_result.counters) == ()
        assert table.unknown_counters(ampere_result.counters) == ()

    def test_unsupported_design_rejected(self):
        with pytest.raises(ValueError):
            simulate_flash_attention(DesignKind.VOLTA)

    def test_custom_workload(self):
        workload = FlashAttentionWorkload(seq_len=256, head_dim=64)
        result = VirgoFlashAttentionKernel().simulate(workload)
        assert result.total_cycles > 0
        assert result.workload.iterations == 16

    def test_direct_kernel_classes(self, virgo_fp32_design):
        kernel = VirgoFlashAttentionKernel(virgo_fp32_design)
        result = kernel.simulate(FlashAttentionWorkload(seq_len=128))
        assert result.mac_utilization > 0.3

    def test_ampere_kernel_rejects_wrong_design(self, virgo_fp32_design):
        with pytest.raises(ValueError):
            AmpereFlashAttentionKernel(virgo_fp32_design)
