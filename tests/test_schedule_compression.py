"""Steady-state schedule compression must be bit-identical to full expansion.

The GEMM kernel builders schedule their tile loops through
``repro.kernels.gemm.schedule_loops``, which either materializes every
operation on the taskgraph (``full_expansion=True``, the historical path) or
executes warm-up plus one steady-state period and extrapolates the rest.
These tests enforce the central contract: the two paths agree exactly --
total cycles, per-kind busy cycles, per-resource busy cycles, counters and
instruction counts -- across designs, dtypes and awkward shapes, while the
compressed path's materialized operation count stays constant no matter how
large the problem grows.
"""

import pytest

from repro.config.presets import DesignKind
from repro.config.soc import DataType
from repro.kernels.gemm import GemmWorkload, simulate_gemm
from repro.sim.steady_state import LoopStep, SteadyStateEngine

ALL_DESIGNS = list(DesignKind)

#: Shapes chosen to hit the corners: steady-state-dominated squares, shapes
#: with non-divisible edge tiles in every dimension, single-tile kernels,
#: degenerate skinny GEMMs (decode-phase projections) and K-heavy panels.
SHAPES = [
    (256, 256, 256),
    (512, 512, 512),
    (384, 192, 640),
    (130, 70, 129),
    (100, 100, 100),
    (257, 129, 511),
    (1, 4096, 4096),
    (4096, 1, 64),
    (2048, 512, 96),
    (8, 8, 8),
]


def _results_match(compressed, expanded):
    assert compressed.total_cycles == expanded.total_cycles
    assert compressed.phase_cycles == expanded.phase_cycles
    assert compressed.resource_busy == expanded.resource_busy
    assert compressed.retired_instructions == expanded.retired_instructions
    assert compressed.counters.as_dict() == expanded.counters.as_dict()
    assert compressed.ideal_mac_cycles == expanded.ideal_mac_cycles
    assert compressed.iteration_cycles == expanded.iteration_cycles


class TestCompressedEqualsExpanded:
    @pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda kind: kind.value)
    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: "x".join(map(str, s)))
    def test_fp16_grid(self, design, shape):
        m, n, k = shape
        workload = GemmWorkload(m=m, n=n, k=k, dtype=DataType.FP16)
        compressed = simulate_gemm(design, workload, DataType.FP16)
        expanded = simulate_gemm(design, workload, DataType.FP16, full_expansion=True)
        _results_match(compressed, expanded)

    @pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda kind: kind.value)
    @pytest.mark.parametrize("shape", [(512, 512, 512), (130, 70, 129)],
                             ids=lambda s: "x".join(map(str, s)))
    def test_fp32_grid(self, design, shape):
        m, n, k = shape
        workload = GemmWorkload(m=m, n=n, k=k, dtype=DataType.FP32)
        compressed = simulate_gemm(design, workload, DataType.FP32)
        expanded = simulate_gemm(design, workload, DataType.FP32, full_expansion=True)
        _results_match(compressed, expanded)


class TestConstantOperationGraph:
    """The materialized graph must not grow with ``cluster_tiles x k_iterations``."""

    @pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda kind: kind.value)
    def test_executed_operations_independent_of_problem_size(self, design):
        large = simulate_gemm(design, GemmWorkload(m=4096, n=4096, k=4096))
        larger = simulate_gemm(design, GemmWorkload(m=8192, n=8192, k=8192))
        executed = large.schedule_stats["executed_operations"]
        assert executed == larger.schedule_stats["executed_operations"]
        # Warm-up + one steady-state period + drain: a few dozen operations,
        # not the hundreds of thousands the loop nest spans.
        assert executed < 100
        assert large.schedule_stats["operation_count"] > 100_000
        assert larger.schedule_stats["extrapolated_operations"] > large.schedule_stats[
            "extrapolated_operations"
        ]

    def test_large_virgo_matches_full_expansion(self):
        """One direct 4096^3 cross-check against the fully expanded schedule."""
        workload = GemmWorkload(m=4096, n=4096, k=4096)
        compressed = simulate_gemm(DesignKind.VIRGO, workload)
        expanded = simulate_gemm(DesignKind.VIRGO, workload, full_expansion=True)
        _results_match(compressed, expanded)


class TestSteadyStateEngine:
    """Unit coverage for the max-plus loop executor itself."""

    def _chain_engine(self):
        engine = SteadyStateEngine()
        engine.add_resource("unit")
        return engine

    def test_serial_chain_extrapolates_exactly(self):
        step = LoopStep(resource="unit", duration=7, kind="work", deps=("prev",), sets=("prev",))
        engine = self._chain_engine()
        engine.run_loop([step], 1_000_000)
        assert engine.makespan == 7_000_000
        assert engine.busy["unit"] == 7_000_000
        assert engine.kind_cycles["work"] == 7_000_000
        assert engine.executed_operations < 10
        assert engine.executed_operations + engine.extrapolated_operations == 1_000_000

    def test_two_resource_regime_change_stays_exact(self):
        """A faster pipe that overtakes a leading one mid-loop is handled.

        The consumer is initially self-limited (it starts far ahead); the
        free-running producer advances faster, overtakes around iteration
        1000 and gates the consumer from then on.  The regime change forces
        a partial jump plus re-detection, and the result must equal a naive
        replay of the same recurrence.
        """
        producer = LoopStep(resource="p", duration=5, kind="produce", sets=("made",))
        consumer = LoopStep(
            resource="c", duration=3, kind="consume", deps=("made", "done"), sets=("done",)
        )
        count = 10_000
        engine = SteadyStateEngine()
        engine.add_resource("p")
        engine.add_resource("c")
        # Skew the consumer chain far ahead so the producer track must catch up.
        engine.anchors["done"] = 2_000
        engine.run_loop([producer, consumer], count)

        p_free = c_free = 0
        done = 2_000
        made = None
        makespan = 0
        for _ in range(count):
            made = p_free + 5
            p_free = made
            start = max(c_free, made, done)
            done = start + 3
            c_free = done
            makespan = max(makespan, made, done)
        assert engine.makespan == makespan
        assert engine.anchors["done"] == done
        assert engine.anchors["made"] == made
        assert engine.free["p"] == p_free
        assert engine.free["c"] == c_free
        assert engine.executed_operations < 100  # two regimes, two detections

    def test_outer_loop_uniform_shift(self):
        step = LoopStep(resource="unit", duration=4, kind="work", deps=("prev",), sets=("prev",))
        engine = self._chain_engine()

        def body():
            engine.execute(step)
            engine.execute(step)

        engine.run_outer(body, 500_000)
        assert engine.makespan == 4_000_000
        assert engine.busy["unit"] == 4_000_000
        assert engine.executed_operations <= 8
