"""Tests for the continuous-batching serving scenario: traces, merge, run, CLI."""

import json

import pytest

from repro.__main__ import main
from repro.config.presets import DesignKind
from repro.analysis.serving import (
    format_latency_report,
    latency_summary,
    percentile,
    serving_latency_report,
)
from repro.workloads import (
    ModelSpec,
    RequestSpec,
    ServingScheduler,
    ServingTrace,
    lower_graph,
    build_model,
    merge_schedules,
    resolve_trace,
    run_serving,
    scaled_spec,
    trace_names,
)
from repro.workloads.lowering import MATRIX_RESOURCE, SMALL_MATRIX_RESOURCE
from repro.workloads.models import REQUEST_MODELS

#: A deliberately tiny request network so serving tests stay fast.
TINY_GPT = ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                     hidden=128, blocks=1, heads=4)
TINY_MOE = ModelSpec(family="moe", phase="decode", batch=1, seq_len=32,
                     hidden=128, blocks=1, heads=4, experts=4, top_k=2)


def tiny_trace(arrivals=(0, 0), decode_steps=2, prompt_len=32, bucket=32):
    requests = tuple(
        RequestSpec(
            request_id=f"q{index}",
            model=TINY_GPT if index % 2 == 0 else TINY_MOE,
            arrival_cycle=arrival,
            prompt_len=prompt_len,
            decode_steps=decode_steps,
        )
        for index, arrival in enumerate(arrivals)
    )
    return ServingTrace(name="tiny", requests=requests, context_bucket=bucket)


class TestTraceLayer:
    def test_request_validation(self):
        with pytest.raises(ValueError, match="positive prompt_len"):
            RequestSpec(request_id="r", model=TINY_GPT, prompt_len=0)
        with pytest.raises(ValueError, match="arrival_cycle"):
            RequestSpec(request_id="r", model=TINY_GPT, arrival_cycle=-1)
        with pytest.raises(ValueError, match="non-empty request_id"):
            RequestSpec(request_id="", model=TINY_GPT)

    def test_request_id_slash_rejected(self):
        # "a" and "a/b" would make one request's kernel namespace a string
        # prefix of the other's and misattribute layer completions.
        with pytest.raises(ValueError, match="must not contain '/'"):
            RequestSpec(request_id="a/b", model=TINY_GPT)

    def test_non_decode_family_rejected(self):
        bert = ModelSpec(family="bert", phase="encode", seq_len=32, hidden=128, heads=4)
        with pytest.raises(ValueError, match="no .* decode phase|has no"):
            RequestSpec(request_id="r", model=bert)

    def test_duplicate_request_ids_rejected(self):
        request = RequestSpec(request_id="dup", model=TINY_GPT)
        with pytest.raises(ValueError, match="duplicate request id"):
            ServingTrace(name="bad", requests=(request, request))

    def test_sorted_requests_orders_by_arrival_then_id(self):
        # Same arrival cycle: construction order is legal either way and the
        # id breaks the tie deterministically.
        requests = (
            RequestSpec(request_id="qa", model=TINY_GPT, arrival_cycle=100),
            RequestSpec(request_id="qb", model=TINY_MOE, arrival_cycle=100),
        )
        trace = ServingTrace(name="tie", requests=requests, context_bucket=32)
        assert [r.request_id for r in trace.sorted_requests()] == ["qa", "qb"]

    def test_unsorted_trace_rejected(self):
        with pytest.raises(ValueError, match="not sorted by arrival"):
            tiny_trace(arrivals=(500, 0))

    def test_context_bucketing_rounds_up(self):
        trace = tiny_trace(bucket=64)
        assert trace.bucketed_context(1) == 64
        assert trace.bucketed_context(64) == 64
        assert trace.bucketed_context(65) == 128

    def test_trace_to_dict_round_trips_through_json(self):
        trace = tiny_trace()
        encoded = json.loads(json.dumps(trace.to_dict()))
        assert encoded["name"] == "tiny"
        assert len(encoded["requests"]) == 2
        assert encoded["requests"][0]["model"]["family"] == "gpt"

    def test_zoo_traces_resolve_and_validate(self):
        for name in trace_names():
            trace = resolve_trace(name)
            assert len(trace) > 0
            assert trace.name == name

    def test_zoo_traces_are_deterministic(self):
        # Builders must be pure functions of their arguments: the batch
        # runner content-hashes traces, so re-imports may not drift.
        first = resolve_trace("poisson-mixed").to_dict()
        from repro.workloads.models import poisson_trace, _mixed_models

        rebuilt = poisson_trace("poisson-mixed", _mixed_models()).to_dict()
        assert first == rebuilt

    def test_unknown_trace_lists_alternatives(self):
        with pytest.raises(KeyError, match="poisson-mixed"):
            resolve_trace("nope")


class TestMergeSchedules:
    def _schedules(self, heterogeneous=False):
        design = DesignKind.VIRGO
        spec_a = scaled_spec(TINY_GPT, context_len=64)
        spec_b = scaled_spec(TINY_MOE, context_len=64)
        a = lower_graph(build_model(spec_a), design, heterogeneous=heterogeneous)
        b = lower_graph(build_model(spec_b), design, heterogeneous=heterogeneous)
        return a, b

    def test_merged_names_are_disjoint_and_complete(self):
        a, b = self._schedules()
        merged = merge_schedules([("a/", a), ("b/", b)], model="m")
        names = [inv.name for inv in merged.invocations]
        assert len(names) == len(set(names)) == len(a.invocations) + len(b.invocations)
        assert all(name.startswith(("a/", "b/")) for name in names)

    def test_merged_deps_stay_within_namespace(self):
        a, b = self._schedules()
        merged = merge_schedules([("a/", a), ("b/", b)], model="m")
        for inv in merged.invocations:
            prefix = inv.name.split("/", 1)[0] + "/"
            assert all(dep.startswith(prefix) for dep in inv.deps)

    def test_merged_ideal_cycles_sum(self):
        a, b = self._schedules()
        merged = merge_schedules([("a/", a), ("b/", b)], model="m")
        assert merged.ideal_mac_cycles == pytest.approx(
            a.ideal_mac_cycles + b.ideal_mac_cycles
        )

    def test_interleaves_by_position(self):
        a, b = self._schedules()
        merged = merge_schedules([("a/", a), ("b/", b)], model="m")
        assert merged.invocations[0].name.startswith("a/")
        assert merged.invocations[1].name.startswith("b/")

    def test_duplicate_prefixes_rejected(self):
        a, b = self._schedules()
        with pytest.raises(ValueError, match="distinct"):
            merge_schedules([("a/", a), ("a/", b)], model="m")

    def test_mixed_unit_layout_rejected(self):
        a, _ = self._schedules(heterogeneous=False)
        _, b = self._schedules(heterogeneous=True)
        with pytest.raises(ValueError, match="unit layout"):
            merge_schedules([("a/", a), ("b/", b)], model="m")

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_schedules([], model="m")


class TestServingRun:
    def test_all_requests_finish_with_consistent_stamps(self):
        result = run_serving(tiny_trace(arrivals=(0, 100)), DesignKind.VIRGO)
        assert len(result.requests) == 2
        for request in result.requests:
            assert request.arrival_cycle <= request.admitted_cycle
            assert request.admitted_cycle < request.first_token_cycle
            assert request.first_token_cycle <= request.finish_cycle
            assert request.queueing_cycles >= 0
            assert request.ttft_cycles <= request.latency_cycles

    def test_decode_steps_conserved(self):
        trace = tiny_trace(arrivals=(0, 0, 50), decode_steps=3)
        result = run_serving(trace, DesignKind.VIRGO)
        assert result.decode_steps_executed == trace.total_decode_steps
        assert sum(r.decode_steps for r in result.requests) == trace.total_decode_steps

    def test_late_arrival_waits_for_iteration_boundary(self):
        # The second request arrives mid-iteration and must queue until the
        # first iteration completes.
        first_alone = run_serving(tiny_trace(arrivals=(0,), decode_steps=1))
        span = first_alone.total_cycles
        result = run_serving(tiny_trace(arrivals=(0, span // 2), decode_steps=2))
        late = next(r for r in result.requests if r.arrival_cycle > 0)
        assert late.queueing_cycles > 0

    def test_idle_gap_skips_to_next_arrival(self):
        result = run_serving(tiny_trace(arrivals=(0, 10_000_000), decode_steps=1))
        late = next(r for r in result.requests if r.arrival_cycle > 0)
        assert late.admitted_cycle == late.arrival_cycle
        assert result.total_cycles > 10_000_000
        assert result.serving_cycles < result.total_cycles

    def test_merged_serving_not_worse_than_isolated_sum(self):
        trace = tiny_trace(arrivals=(0, 0, 0))
        scheduler = ServingScheduler(DesignKind.VIRGO)
        result = scheduler.run(trace)
        isolated = sum(
            scheduler.isolated_cycles(request, trace.context_bucket)
            for request in trace.requests
        )
        assert result.serving_cycles <= isolated

    def test_latency_never_below_isolated(self):
        trace = tiny_trace(arrivals=(0, 0, 200), decode_steps=2)
        scheduler = ServingScheduler(DesignKind.VIRGO)
        result = scheduler.run(trace)
        by_id = {request.request_id: request for request in result.requests}
        for request in trace.requests:
            isolated = scheduler.isolated_cycles(request, trace.context_bucket)
            assert by_id[request.request_id].latency_cycles >= isolated

    def test_schedule_memoization_hits_timing_cache(self):
        scheduler = ServingScheduler(DesignKind.VIRGO)
        trace = tiny_trace(arrivals=(0, 0), decode_steps=4)
        result = scheduler.run(trace)
        # Bucketed contexts repeat across iterations, so after the first few
        # iterations every kernel resolves from the timing cache.
        assert result.timing_cache["hits"] > result.timing_cache["misses"]

    def test_hetero_spreads_requests_across_both_units(self):
        trace = tiny_trace(arrivals=(0,) * 6, decode_steps=2)
        result = run_serving(trace, DesignKind.VIRGO, heterogeneous=True)
        assert result.resource_busy[MATRIX_RESOURCE] > 0
        assert result.resource_busy[SMALL_MATRIX_RESOURCE] > 0

    def test_hetero_beats_single_unit_on_coresident_batch(self):
        trace = tiny_trace(arrivals=(0,) * 6, decode_steps=2)
        single = run_serving(trace, DesignKind.VIRGO)
        dual = run_serving(trace, DesignKind.VIRGO, heterogeneous=True)
        assert dual.total_cycles < single.total_cycles

    def test_result_to_dict_is_canonical_json(self):
        result = run_serving(tiny_trace(), DesignKind.VIRGO)
        encoded = json.loads(json.dumps(result.to_dict()))
        assert encoded["kind"] == "serving"
        assert encoded["decode_steps_executed"] == 4
        assert "timing_cache" not in encoded  # diagnostic only, never cached


class TestLatencyAnalysis:
    def test_percentile_nearest_rank(self):
        values = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 100
        assert percentile(values, 99) == 100
        assert percentile([42], 50) == 42

    def test_percentile_single_sample(self):
        # n=1 degenerate: every percentile is the one value, including the
        # low tail (rank clamps to 1, never 0).
        for p in (1, 50, 95, 99, 100, 0.5, 37.5):
            assert percentile([42], p) == 42

    def test_percentile_two_samples(self):
        # n=2 degenerate: p50 is exactly the lower value (rank ceil(1.0)=1);
        # anything above the midpoint is the upper one.
        assert percentile([10, 20], 50) == 10
        assert percentile([10, 20], 50.5) == 20
        assert percentile([10, 20], 95) == 20
        assert percentile([10, 20], 99) == 20
        assert percentile([10, 20], 100) == 20

    def test_percentile_integral_p_has_no_float_overshoot(self):
        # ceil(p / 100 * n) in floats overshoots whenever p / 100 rounds up
        # in binary: 0.55 * 100 == 55.000000000000007 would make p55 of 100
        # samples the 56th value.  Integral p must rank exactly.
        values = list(range(1, 101))
        assert percentile(values, 55) == 55
        assert percentile(values, 7) == 7
        assert percentile(values, 29) == 29
        assert percentile(list(range(1, 51)), 14) == 7

    def test_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)
        with pytest.raises(ValueError, match="percentile"):
            percentile([1], 0)

    def test_latency_summary_fields(self):
        summary = latency_summary([1.0, 2.0, 3.0, 4.0])
        assert set(summary) == {"p50", "p95", "p99", "mean", "max"}
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["max"] == 4.0

    def test_report_percentiles_match_request_records(self):
        result = run_serving(tiny_trace(arrivals=(0, 0, 100)), DesignKind.VIRGO)
        report = serving_latency_report(result)
        latencies = sorted(r.latency_cycles for r in result.requests)
        assert report["latency_cycles"]["max"] == latencies[-1]
        assert report["requests"] == 3
        assert report["latency_cycles"]["p50"] in latencies

    def test_occupancy_uses_serving_span(self):
        result = run_serving(tiny_trace(arrivals=(0, 10_000_000)), DesignKind.VIRGO)
        report = serving_latency_report(result)
        # Excluding the idle arrival gap keeps occupancy a load metric.
        busy = result.resource_busy[MATRIX_RESOURCE]
        expected = 100.0 * busy / result.serving_cycles
        assert report["unit_occupancy_percent"][MATRIX_RESOURCE] == pytest.approx(expected)

    def test_format_report_prints_percentiles(self):
        text = format_latency_report(run_serving(tiny_trace(), DesignKind.VIRGO))
        for needle in ("latency: p50", "ttft: p50", "queueing: p50", "p95", "p99"):
            assert needle in text


class TestServeCli:
    def test_list_traces(self, capsys):
        assert main(["serve", "--list"]) == 0
        out = capsys.readouterr().out
        for name in trace_names():
            assert name in out

    def test_default_run_prints_request_table(self, capsys):
        assert main(["serve", "--trace", "uniform-moe"]) == 0
        out = capsys.readouterr().out
        assert "uniform-moe on Virgo" in out
        assert "TTFT" in out and "latency" in out
        assert "timing cache:" in out

    def test_latency_report_flag(self, capsys):
        assert main(["serve", "--trace", "uniform-moe", "--latency-report"]) == 0
        out = capsys.readouterr().out
        assert "latency: p50" in out and "p95" in out and "p99" in out
        assert "ttft: p50" in out

    def test_json_report(self, capsys):
        assert main(["serve", "--trace", "uniform-moe", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["kind"] == "serving"
        assert report["latency_report"]["latency_cycles"]["p99"] > 0

    def test_unknown_trace_exits_with_choices(self):
        with pytest.raises(SystemExit, match="poisson-mixed"):
            main(["serve", "--trace", "bogus"])

    def test_unknown_design_exits_with_choices(self):
        with pytest.raises(SystemExit, match="virgo"):
            main(["serve", "--design", "bogus"])


class TestServingZooRequestModels:
    def test_request_models_are_decode_phase_singletons(self):
        for name, spec in REQUEST_MODELS.items():
            assert spec.phase == "decode", name
            assert spec.batch == 1, name
