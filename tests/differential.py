"""Shared differential-testing helpers.

The repo's exactness claims -- steady-state GEMM/flash compression, the
serving iteration memo, and epoch-level serving compression -- are all the
same statement: two execution paths must produce *byte-identical* canonical
encodings, not merely approximately equal numbers.  This module is the one
place that statement is implemented, so every differential suite
(``test_schedule_compression``, ``test_flash_compression``,
``test_serving_memo``, ``test_faults``, ``test_epochs``) fails with the
same, pinpointed diagnostics.
"""

import json
from typing import Iterable, Sequence, Tuple


def canonical_bytes(payload, ignore_paths: Sequence[str] = ()) -> str:
    """The canonical JSON encoding compared by :func:`assert_byte_identical`.

    ``payload`` may be a dict or anything with a ``to_dict()``.
    ``ignore_paths`` names dotted paths (e.g. ``("perf.epochs",)``) pruned
    before encoding -- for diagnostics that legitimately differ between the
    two paths under comparison.  A missing path is fine: the pruning is a
    no-op there, so one ignore list can serve several payload shapes.
    """
    if hasattr(payload, "to_dict"):
        payload = payload.to_dict()
    if ignore_paths:
        payload = _without_paths(payload, ignore_paths)
    return json.dumps(payload, sort_keys=True)


def assert_byte_identical(
    left,
    right,
    *,
    ignore_paths: Sequence[str] = (),
    context: str = "",
) -> None:
    """Assert two payloads encode to byte-identical canonical JSON.

    On mismatch, the error names the first diverging byte offset and shows
    a window of both encodings around it -- a 100k-character encoding diff
    is useless without that.
    """
    a = canonical_bytes(left, ignore_paths)
    b = canonical_bytes(right, ignore_paths)
    if a == b:
        return
    offset, left_window, right_window = first_divergence(a, b)
    prefix = f"{context}: " if context else ""
    raise AssertionError(
        f"{prefix}encodings diverge at byte {offset} "
        f"(lengths {len(a)} vs {len(b)}):\n"
        f"  left : ...{left_window}...\n"
        f"  right: ...{right_window}..."
    )


def _without_paths(payload: dict, paths: Iterable[str]) -> dict:
    pruned = dict(payload)
    for path in paths:
        head, _, rest = path.partition(".")
        if head not in pruned:
            continue
        if rest:
            child = pruned[head]
            if isinstance(child, dict):
                pruned[head] = _without_paths(child, (rest,))
        else:
            del pruned[head]
    return pruned


def first_divergence(a: str, b: str) -> Tuple[int, str, str]:
    """(offset, left window, right window) of the first differing byte."""
    offset = next(
        (i for i, (x, y) in enumerate(zip(a, b)) if x != y), min(len(a), len(b))
    )
    lo, hi = max(0, offset - 60), offset + 60
    return offset, a[lo:hi], b[lo:hi]
