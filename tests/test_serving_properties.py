"""Property-based tests (hypothesis) for the continuous-batching scheduler.

Seeded-random traces over tiny GPT/GQA/MoE request networks drive four
invariants the serving scheduler must hold for *every* trace shape:

1. no request's end-to-end latency is below its isolated-run latency (the
   merged schedule only ever adds contention, never removes work);
2. the merged serving span never exceeds the sum of the isolated per-request
   makespans (continuous batching cannot be worse than running the requests
   back to back);
3. decode steps are conserved: every request executes exactly its budget,
   and the iteration records sum to the trace total;
4. timing-cache activity is consistent between merged and isolated runs --
   the merged schedule is a re-arrangement of the same kernels, so from a
   cold cache both runs perform the same number of lookups and simulate the
   same set of distinct kernels.

This module also rides the CI perf-smoke job with an explicit wall-clock
budget (see ``test_serving_run_stays_within_wallclock_budget``): the serving
loop leans on schedule memoization and the timing cache, and a regression
that re-simulates kernels per iteration would blow the budget loudly.
"""

import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.presets import DesignKind
from repro.perf import timing_cache
from repro.workloads import (
    ModelSpec,
    RequestSpec,
    ServingScheduler,
    ServingTrace,
    run_serving,
)

#: Tiny request networks: the properties are about scheduling, not size.
GPT = ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                hidden=128, blocks=1, heads=4)
GQA = ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                hidden=128, blocks=1, heads=4, kv_heads=1)
MOE = ModelSpec(family="moe", phase="decode", batch=1, seq_len=32,
                hidden=128, blocks=1, heads=4, experts=4, top_k=2)
MODELS = (GPT, GQA, MOE)

@st.composite
def traces(draw):
    # Up to 6 requests: with the heterogeneous unit stride of 5, batches of
    # 5+ exercise the small-matrix-unit assignment path, so the invariants
    # are falsifiable where they are actually at risk.
    count = draw(st.integers(1, 6))
    bucket = draw(st.sampled_from((32, 64)))
    requests = []
    for index in range(count):
        requests.append(
            RequestSpec(
                request_id=f"h{index}",
                model=MODELS[draw(st.integers(0, len(MODELS) - 1))],
                arrival_cycle=draw(st.integers(0, 500_000)),
                prompt_len=draw(st.integers(1, 160)),
                decode_steps=draw(st.integers(1, 3)),
            )
        )
    # Traces must be sorted by (arrival, id) since construction validates it.
    requests.sort(key=lambda r: (r.arrival_cycle, r.request_id))
    return ServingTrace(name="hypothesis", requests=tuple(requests), context_bucket=bucket)


@settings(deadline=None, max_examples=12)
@given(trace=traces(), heterogeneous=st.booleans())
def test_latency_never_below_isolated_run(trace, heterogeneous):
    scheduler = ServingScheduler(DesignKind.VIRGO, heterogeneous=heterogeneous)
    result = scheduler.run(trace)
    by_id = {request.request_id: request for request in result.requests}
    for request in trace.requests:
        isolated = scheduler.isolated_cycles(request, trace.context_bucket)
        assert by_id[request.request_id].latency_cycles >= isolated


@settings(deadline=None, max_examples=12)
@given(trace=traces(), heterogeneous=st.booleans())
def test_merged_span_at_most_sum_of_isolated_makespans(trace, heterogeneous):
    scheduler = ServingScheduler(DesignKind.VIRGO, heterogeneous=heterogeneous)
    result = scheduler.run(trace)
    isolated_sum = sum(
        scheduler.isolated_cycles(request, trace.context_bucket)
        for request in trace.requests
    )
    # serving_cycles counts only busy iterations, so trace idle gaps (which
    # isolated runs skip too) do not distort the comparison.
    assert result.serving_cycles <= isolated_sum


@settings(deadline=None, max_examples=12)
@given(trace=traces())
def test_decode_steps_conserved(trace):
    result = run_serving(trace, DesignKind.VIRGO)
    assert result.decode_steps_executed == trace.total_decode_steps
    per_request = {request.request_id: 0 for request in trace.requests}
    for record in result.iterations:
        assert record.batch == len(record.request_ids)
        for request_id in record.request_ids:
            per_request[request_id] += 1
    assert per_request == {
        request.request_id: request.decode_steps for request in trace.requests
    }


@settings(deadline=None, max_examples=8)
@given(trace=traces())
def test_timing_cache_stats_consistent_between_merged_and_isolated(trace):
    cache = timing_cache()

    cache.clear()
    scheduler = ServingScheduler(DesignKind.VIRGO)
    for request in trace.requests:
        scheduler.isolated_step_spans(request, trace.context_bucket)
    isolated = dict(hits=cache.hits, misses=cache.misses)

    cache.clear()
    merged = ServingScheduler(DesignKind.VIRGO).run(trace)
    batched = dict(hits=cache.hits, misses=cache.misses)
    cache.clear()

    # Same kernels, same distinct shapes: cold-cache misses and the total
    # lookup count must agree exactly; the run's own attribution matches.
    assert batched["misses"] == isolated["misses"]
    assert batched["hits"] + batched["misses"] == isolated["hits"] + isolated["misses"]
    assert merged.timing_cache == batched


def test_serving_run_stays_within_wallclock_budget():
    """Perf-smoke guardrail: a zoo trace serves end to end in seconds.

    The budget is generous (CI machines vary) but a scheduler regression
    that re-lowers or re-simulates kernels per iteration is orders of
    magnitude over it.
    """
    start = time.perf_counter()
    result = run_serving("poisson-mixed", DesignKind.VIRGO)
    elapsed = time.perf_counter() - start
    assert result.decode_steps_executed > 0
    assert elapsed < 10.0, f"serving run took {elapsed:.1f}s (budget 10s)"
