"""Tests for Virgo's disaggregated matrix unit: systolic array, accumulator, MMIO,
synchronizer, Gemmini unit, cluster assembly and the virgo_* API."""

import numpy as np
import pytest

from repro.config.soc import DataType
from repro.core.accumulator import AccumulatorAllocationError, AccumulatorMemory
from repro.core.api import VirgoContext
from repro.core.cluster import VirgoCluster
from repro.core.gemmini import GemminiMatrixUnit
from repro.core.mmio import CommandStatus, MmioInterface, MmioRegister
from repro.core.synchronizer import ClusterSynchronizer
from repro.core.systolic_array import SystolicArray
from repro.sim.stats import Counters


class TestSystolicArray:
    def test_functional_correctness(self, rng):
        array = SystolicArray(16, 16, dtype=DataType.FP32)
        a = rng.standard_normal((16, 64)).astype(np.float32)
        b = rng.standard_normal((64, 16)).astype(np.float32)
        result = array.compute_subtile(a, b)
        np.testing.assert_allclose(result, a @ b, rtol=1e-4, atol=1e-4)

    def test_accumulation(self, rng):
        array = SystolicArray(8, 8, dtype=DataType.FP32)
        a = rng.standard_normal((8, 8)).astype(np.float32)
        b = rng.standard_normal((8, 8)).astype(np.float32)
        c = rng.standard_normal((8, 8)).astype(np.float32)
        result = array.compute_subtile(a, b, accumulator=c)
        np.testing.assert_allclose(result, a @ b + c, rtol=1e-4, atol=1e-4)

    def test_oversized_subtile_rejected(self, rng):
        array = SystolicArray(8, 8)
        with pytest.raises(ValueError):
            array.compute_subtile(np.zeros((16, 8)), np.zeros((8, 8)))

    def test_fp16_quantization(self, rng):
        array = SystolicArray(16, 16, dtype=DataType.FP16)
        a = rng.standard_normal((16, 16)).astype(np.float32)
        b = rng.standard_normal((16, 16)).astype(np.float32)
        result = array.compute_subtile(a, b)
        expected = a.astype(np.float16).astype(np.float32) @ b.astype(np.float16).astype(np.float32)
        np.testing.assert_allclose(result, expected, rtol=1e-6)

    def test_subtile_pass_timing(self):
        array = SystolicArray(16, 16)
        pass_ = array.subtile_pass(depth=128)
        assert pass_.cycles == 128 + 30
        assert pass_.macs == 16 * 16 * 128

    def test_tile_cycles_above_ideal(self):
        array = SystolicArray(16, 16)
        assert array.tile_cycles(128, 64, 128) >= array.ideal_tile_cycles(128, 64, 128)

    def test_utilization_improves_with_deeper_k(self):
        """Longer K amortizes the fill/drain skew (the scalability argument)."""
        array = SystolicArray(16, 16)
        assert array.utilization_for_tile(128, 64, 256) > array.utilization_for_tile(128, 64, 32)

    def test_pipelined_faster_than_unpipelined(self):
        array = SystolicArray(16, 16)
        assert array.tile_cycles(64, 64, 128, pipelined=True) < array.tile_cycles(
            64, 64, 128, pipelined=False
        )

    def test_mac_counting(self, rng):
        array = SystolicArray(8, 8)
        counters = Counters()
        array.compute_subtile(np.zeros((8, 32)), np.zeros((32, 8)), counters=counters)
        assert counters["matrix_unit.pe.macs"] == 8 * 8 * 32


class TestAccumulatorMemory:
    def test_allocate_and_accumulate(self, rng):
        accumulator = AccumulatorMemory(32 * 1024)
        accumulator.allocate("tile", 64, 64)
        partial = rng.standard_normal((64, 64)).astype(np.float32)
        accumulator.accumulate("tile", partial)
        accumulator.accumulate("tile", partial)
        np.testing.assert_allclose(accumulator.read("tile"), 2 * partial, rtol=1e-6)

    def test_write_overwrites(self, rng):
        accumulator = AccumulatorMemory(32 * 1024)
        accumulator.allocate("tile", 8, 8)
        values = rng.standard_normal((8, 8)).astype(np.float32)
        accumulator.accumulate("tile", values)
        accumulator.write("tile", values)
        np.testing.assert_allclose(accumulator.read("tile"), values)

    def test_capacity_limit_128x64_tile_fits_32kib(self):
        """The paper's 128x64 FP32 accumulator tile exactly fills the 32 KiB SRAM."""
        accumulator = AccumulatorMemory(32 * 1024)
        accumulator.allocate("o", 128, 64)
        assert accumulator.free_bytes == 0
        with pytest.raises(AccumulatorAllocationError):
            accumulator.allocate("extra", 1, 1)

    def test_free_releases_space(self):
        accumulator = AccumulatorMemory(32 * 1024)
        accumulator.allocate("a", 64, 64)
        accumulator.free("a")
        accumulator.allocate("b", 128, 64)

    def test_word_access_counting(self, rng):
        accumulator = AccumulatorMemory(32 * 1024)
        accumulator.allocate("tile", 16, 16)
        accumulator.accumulate("tile", np.ones((16, 16), dtype=np.float32))
        assert accumulator.counters["accum.read_words"] == 256
        assert accumulator.counters["accum.write_words"] == 256

    def test_access_cycles_wide_port(self):
        accumulator = AccumulatorMemory(32 * 1024, width_words=16)
        assert accumulator.access_cycles(256) == 16

    def test_double_allocation_rejected(self):
        accumulator = AccumulatorMemory(1024)
        accumulator.allocate("x", 4, 4)
        with pytest.raises(ValueError):
            accumulator.allocate("x", 4, 4)


class TestMmioInterface:
    def test_register_decode(self):
        mmio = MmioInterface(base_address=0x1F000)
        assert mmio.contains(0x1F000)
        assert not mmio.contains(0x1F000 + 4 * MmioInterface.WINDOW_WORDS)

    def test_store_latches_command_on_start(self):
        mmio = MmioInterface(base_address=0)
        mmio.store(4 * MmioRegister.DIM_M, 128)
        mmio.store(4 * MmioRegister.START, 1)
        assert mmio.status is CommandStatus.BUSY
        assert mmio.commands[0].operands[MmioRegister.DIM_M] == 128

    def test_start_while_busy_raises(self):
        mmio = MmioInterface(base_address=0)
        mmio.store(4 * MmioRegister.START, 1)
        with pytest.raises(RuntimeError):
            mmio.store(4 * MmioRegister.START, 1)

    def test_status_polling(self):
        mmio = MmioInterface(base_address=0)
        assert mmio.load(4 * MmioRegister.STATUS) == 0
        mmio.store(4 * MmioRegister.START, 1)
        assert mmio.load(4 * MmioRegister.STATUS) == 1
        mmio.complete(mmio.commands[0], cycle=100)
        assert mmio.load(4 * MmioRegister.STATUS) == 0

    def test_poll_until_done_counts_loads(self):
        mmio = MmioInterface(base_address=0)
        polls = mmio.poll_until_done(expected_busy_cycles=260, poll_interval=10)
        assert polls == 27
        assert mmio.counters["mmio.loads"] == 27

    def test_command_callback(self):
        mmio = MmioInterface(base_address=0)
        seen = []
        mmio.on_command(seen.append)
        mmio.store(4 * MmioRegister.DMA_START, 1)
        assert len(seen) == 1 and seen[0].kind == "dma"

    def test_outside_window_rejected(self):
        mmio = MmioInterface(base_address=0x1000)
        with pytest.raises(ValueError):
            mmio.store(0x0, 1)


class TestClusterSynchronizer:
    def test_barrier_releases_after_all_cores(self):
        synchronizer = ClusterSynchronizer(cores=4, release_latency=4)
        for core in range(3):
            assert synchronizer.arrive(0, core, cycle=10 + core) is None
        result = synchronizer.arrive(0, 3, cycle=20)
        assert result is not None
        assert result.release_cycle == 24
        assert result.stall_cycles[0] == 14

    def test_partial_participation(self):
        synchronizer = ClusterSynchronizer(cores=8)
        assert synchronizer.arrive(1, 0, 0, participating_cores=2) is None
        assert synchronizer.arrive(1, 1, 5, participating_cores=2) is not None

    def test_double_arrival_rejected(self):
        synchronizer = ClusterSynchronizer(cores=2)
        synchronizer.arrive(0, 0, 0)
        with pytest.raises(ValueError):
            synchronizer.arrive(0, 0, 1)

    def test_invalid_core_rejected(self):
        with pytest.raises(ValueError):
            ClusterSynchronizer(cores=2).arrive(0, 5, 0)

    def test_multiple_outstanding_barriers(self):
        synchronizer = ClusterSynchronizer(cores=2)
        synchronizer.arrive(0, 0, 0)
        synchronizer.arrive(1, 0, 0)
        assert synchronizer.outstanding == 2

    def test_counters(self):
        synchronizer = ClusterSynchronizer(cores=2)
        synchronizer.arrive(0, 0, 0)
        synchronizer.arrive(0, 1, 10)
        assert synchronizer.counters["sync.barriers_released"] == 1
        assert synchronizer.counters["sync.barrier_requests"] == 2


class TestGemminiMatrixUnit:
    def _unit(self, virgo_design):
        return GemminiMatrixUnit(virgo_design.matrix_unit, virgo_design.cluster.shared_memory)

    def test_compute_correctness_full_tile(self, virgo_design, rng):
        unit = self._unit(virgo_design)
        a = rng.standard_normal((128, 128)).astype(np.float32)
        b = rng.standard_normal((128, 64)).astype(np.float32)
        result = unit.compute(a, b)
        expected = a.astype(np.float16).astype(np.float32) @ b.astype(np.float16).astype(np.float32)
        np.testing.assert_allclose(result, expected, rtol=1e-2, atol=1e-2)

    def test_compute_with_accumulate(self, virgo_design, rng):
        unit = self._unit(virgo_design)
        a = rng.standard_normal((32, 32)).astype(np.float32)
        b = rng.standard_normal((32, 32)).astype(np.float32)
        c = rng.standard_normal((32, 32)).astype(np.float32)
        result = unit.compute(a, b, accumulate_onto=c)
        expected = (
            a.astype(np.float16).astype(np.float32) @ b.astype(np.float16).astype(np.float32) + c
        )
        np.testing.assert_allclose(result, expected, rtol=1e-2, atol=1e-2)

    def test_compute_into_named_accumulator(self, virgo_design, rng):
        unit = self._unit(virgo_design)
        a = rng.standard_normal((64, 64)).astype(np.float32)
        b = rng.standard_normal((64, 64)).astype(np.float32)
        unit.compute_into("o", a, b, accumulate=False)
        unit.compute_into("o", a, b, accumulate=True)
        expected = 2 * (
            a.astype(np.float16).astype(np.float32) @ b.astype(np.float16).astype(np.float32)
        )
        np.testing.assert_allclose(unit.accumulator.read("o"), expected, rtol=1e-2, atol=1e-2)

    def test_oversized_operation_rejected(self, virgo_design):
        unit = self._unit(virgo_design)
        with pytest.raises(ValueError):
            unit.compute(np.zeros((256, 128)), np.zeros((128, 64)))

    def test_operation_timing_bounds(self, virgo_design):
        unit = self._unit(virgo_design)
        timing = unit.operation_timing(128, 64, 128)
        ideal = 128 * 64 * 128 / unit.array.macs_per_cycle
        assert timing.total_cycles >= ideal
        assert timing.utilization(unit.array.macs_per_cycle) > 0.7

    def test_no_register_file_traffic(self, virgo_design, rng):
        """The disaggregated unit never touches the core register file."""
        unit = self._unit(virgo_design)
        counters = Counters()
        unit.compute(
            rng.standard_normal((32, 32)), rng.standard_normal((32, 32)), counters=counters
        )
        assert counters["core.issue.rf_read_words"] == 0
        assert counters["core.writeback.rf_write_words"] == 0
        assert counters["smem.matrix.read_words"] > 0

    def test_smem_footprint_reuses_b_panel(self, virgo_design):
        """B is streamed once per operation tile (the Table 4 reuse mechanism)."""
        unit = self._unit(virgo_design)
        nbytes = unit.smem_read_bytes(128, 64, 128)
        a_once = 128 * 128 * 2
        b_once = 128 * 64 * 2
        assert nbytes == a_once * (64 // 16) + b_once


class TestVirgoCluster:
    def test_cluster_assembly(self, virgo_design):
        cluster = VirgoCluster(virgo_design)
        assert len(cluster.cores) == 8
        assert len(cluster.matrix_units) == 1
        assert cluster.total_macs_per_cycle == 256

    def test_non_disaggregated_rejected(self, volta_design):
        with pytest.raises(ValueError):
            VirgoCluster(volta_design)

    def test_add_heterogeneous_unit(self, virgo_design):
        cluster = VirgoCluster(virgo_design)
        small_config = cluster.scaled_matrix_unit_config(0.5)
        cluster.add_matrix_unit("small", small_config)
        assert cluster.total_macs_per_cycle == 256 + 64
        assert len(cluster.mmio) == 2

    def test_duplicate_unit_name_rejected(self, virgo_design):
        cluster = VirgoCluster(virgo_design)
        with pytest.raises(ValueError):
            cluster.add_matrix_unit("mu0")

    def test_gather_counters_merges_components(self, virgo_design, rng):
        cluster = VirgoCluster(virgo_design)
        unit = cluster.matrix_unit()
        unit.compute_into("o", rng.standard_normal((16, 16)), rng.standard_normal((16, 16)), False)
        merged = cluster.gather_counters()
        assert merged["accum.write_words"] > 0


class TestVirgoContext:
    def test_end_to_end_small_gemm(self, virgo_design, rng):
        """Listing-1-style flow: DMA load, compute, fence, DMA store."""
        context = VirgoContext(design=virgo_design)
        a = rng.standard_normal((64, 64)).astype(np.float16)
        b = rng.standard_normal((64, 64)).astype(np.float16)
        c = np.zeros((64, 64), dtype=np.float32)
        context.global_store("A", a)
        context.global_store("B", b)
        context.global_store("C", c)
        context.shared_alloc("smem_A", (64, 64))
        context.shared_alloc("smem_B", (64, 64))

        context.virgo_dma_load("A", "smem_A")
        context.virgo_dma_load("B", "smem_B")
        context.virgo_fence()
        context.virgo_compute("smem_A", "smem_B", "acc", accumulate=False)
        context.virgo_fence()
        context.virgo_dma_store("acc", "C")

        expected = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(context.global_load("C"), expected, rtol=1e-2, atol=1e-1)
        assert context.elapsed_cycles() > 0

    def test_fence_waits_for_async_ops(self, virgo_design, rng):
        context = VirgoContext(design=virgo_design)
        context.global_store("A", rng.standard_normal((64, 64)))
        context.shared_alloc("smem_A", (64, 64))
        handle = context.virgo_dma_load("A", "smem_A")
        before = context.now
        waited = context.virgo_fence()
        assert context.now >= handle.end_cycle
        assert waited == handle.end_cycle - before

    def test_fence_with_no_pending_ops(self, virgo_design):
        context = VirgoContext(design=virgo_design)
        assert context.virgo_fence() == 0

    def test_async_ops_overlap(self, virgo_design, rng):
        """Two DMA loads plus a compute take less than their serial sum."""
        context = VirgoContext(design=virgo_design)
        context.global_store("A", rng.standard_normal((128, 128)))
        context.shared_alloc("smem_A", (128, 128))
        context.shared_alloc("smem_B", (128, 64))
        first = context.virgo_dma_load("A", "smem_A")
        context.virgo_compute("smem_A", "smem_B", "acc", accumulate=False)
        second = context.virgo_dma_load("A", "smem_A", rows=128, cols=128)
        context.virgo_fence()
        durations = first.duration + second.duration
        assert context.elapsed_cycles() < durations + 10000

    def test_shared_alloc_capacity_check(self, virgo_design):
        context = VirgoContext(design=virgo_design)
        with pytest.raises(ValueError):
            context.shared_alloc("huge", (1024, 1024), dtype=np.float32)

    def test_simt_elementwise(self, virgo_design, rng):
        context = VirgoContext(design=virgo_design)
        context.shared_alloc("tile", (16, 16), dtype=np.float32)
        context.shared_view("tile")[:] = 2.0
        context.simt_elementwise("tile", lambda x: x * 3.0)
        np.testing.assert_allclose(context.shared_view("tile"), 6.0)
        assert context.counters["core.fpu.ops"] > 0

    def test_threadblock_barrier_advances_time(self, virgo_design):
        context = VirgoContext(design=virgo_design)
        before = context.now
        context.threadblock_barrier()
        assert context.now >= before
