"""Tests for fleet serving: router policies, chaos, failover, batch, CLI.

The fleet simulator's contract is threefold and each clause gets its own
test block here:

1. **Determinism** -- identical arguments (trace, fleet, policy, seeded
   fault plan) produce a byte-identical ``FleetRunResult.to_dict``, cold or
   warm caches, epoch extrapolation on or off.
2. **Disposition partition** -- every request ends in exactly one of
   ``FLEET_DISPOSITIONS``; nothing is dropped or double-counted, under any
   fault plan and any policy.
3. **Failover pays for itself** -- under a seeded crash plan, goodput with
   retries + failover strictly beats the no-failover baseline (the CI chaos
   gate pins the same comparison from the CLI).
"""

import json

import pytest

from repro.__main__ import main
from repro.faults import FleetFaultPlan, ReplicaFaultEvent
from repro.workloads import (
    FLEET_DISPOSITIONS,
    FLEET_ZOO,
    ROUTER_POLICIES,
    FleetJob,
    ModelSpec,
    RequestSpec,
    RouterConfig,
    ServingTrace,
    backoff_cycles,
    fleet_names,
    fleet_sweep_jobs,
    resolve_fleet,
    resolve_fleet_designs,
    resolve_router_policy,
    resolve_slo,
    run_batch,
    run_fleet,
)
from repro.analysis.fleet import (
    fleet_perf_stats,
    fleet_report,
    fleet_request_rows,
    format_fleet_report,
)

#: A deliberately tiny request network so fleet tests stay fast.
TINY_GPT = ModelSpec(family="gpt", phase="decode", batch=1, seq_len=32,
                     hidden=128, blocks=1, heads=4)


def tiny_trace(arrivals=(0, 0, 40_000), decode_steps=2, slo=None, name="tiny-fleet"):
    requests = tuple(
        RequestSpec(
            request_id=f"f{index}",
            model=TINY_GPT,
            arrival_cycle=arrival,
            prompt_len=32,
            decode_steps=decode_steps,
            slo=slo,
        )
        for index, arrival in enumerate(arrivals)
    )
    return ServingTrace(name=name, requests=requests, context_bucket=32)


def dispositions_of(result):
    return {request.request_id: request.disposition for request in result.requests}


class TestBackoff:
    def test_window_doubles_then_saturates(self):
        # The jittered delay lands in [window/2, window); the window itself
        # doubles per attempt and clamps at the cap.
        for attempt, window in [(0, 1000), (1, 2000), (2, 4000), (3, 8000),
                                (4, 8000), (50, 8000)]:
            delay = backoff_cycles(attempt, base=1000, cap=8000, seed=3,
                                   request_id="r")
            assert window // 2 <= delay < window

    def test_deterministic_per_key(self):
        first = backoff_cycles(2, base=100, cap=6400, seed=9, request_id="a")
        again = backoff_cycles(2, base=100, cap=6400, seed=9, request_id="a")
        assert first == again
        other = backoff_cycles(2, base=100, cap=6400, seed=9, request_id="b")
        reseeded = backoff_cycles(2, base=100, cap=6400, seed=10, request_id="a")
        # Distinct keys draw distinct jitters (windows match, delays differ
        # with overwhelming probability for these particular keys).
        assert (other, reseeded) != (first, first)

    def test_never_below_one_cycle(self):
        assert backoff_cycles(0, base=1, cap=1, seed=0, request_id="r") >= 1

    def test_huge_attempt_does_not_overflow(self):
        assert backoff_cycles(10_000, base=2, cap=64_000, seed=0,
                              request_id="r") < 64_000

    def test_validation(self):
        with pytest.raises(ValueError, match="attempt"):
            backoff_cycles(-1, base=10, cap=100, seed=0, request_id="r")
        with pytest.raises(ValueError, match="base"):
            backoff_cycles(0, base=0, cap=100, seed=0, request_id="r")
        with pytest.raises(ValueError, match="cap"):
            backoff_cycles(0, base=10, cap=5, seed=0, request_id="r")


class TestRouterConfig:
    def test_defaults_valid(self):
        config = RouterConfig()
        assert config.failover and config.max_retries == 4

    @pytest.mark.parametrize("field", [
        "health_check_interval", "health_check_timeout",
        "dispatch_timeout", "retry_base_cycles",
    ])
    def test_non_positive_intervals_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            RouterConfig(**{field: 0})

    def test_cap_below_base_rejected(self):
        with pytest.raises(ValueError, match="retry_cap_cycles"):
            RouterConfig(retry_base_cycles=100, retry_cap_cycles=50)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            RouterConfig(max_retries=-1)

    def test_zero_outstanding_rejected(self):
        with pytest.raises(ValueError, match="max_outstanding"):
            RouterConfig(max_outstanding=0)

    def test_to_dict_round_trips_every_knob(self):
        config = RouterConfig(max_retries=2, failover=False, seed=5)
        encoded = config.to_dict()
        assert encoded["max_retries"] == 2
        assert encoded["failover"] is False
        assert RouterConfig(**encoded) == config


class TestFleetResolution:
    def test_count_means_homogeneous_virgos(self):
        assert resolve_fleet_designs(3) == ("virgo", "virgo", "virgo")

    def test_zoo_name(self):
        assert resolve_fleet_designs("mixed-pair") == ("virgo", "volta")

    def test_explicit_designs(self):
        assert resolve_fleet_designs(["hopper", "virgo"]) == ("hopper", "virgo")

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            resolve_fleet_designs(0)
        with pytest.raises(ValueError, match="at least one"):
            resolve_fleet_designs([])

    def test_unknown_name_lists_zoo(self):
        with pytest.raises((KeyError, ValueError), match="duo-virgo"):
            resolve_fleet_designs("no-such-fleet")

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            resolve_fleet_designs(["virgo", "tpu"])

    def test_zoo_is_sorted_and_resolvable(self):
        assert fleet_names() == sorted(FLEET_ZOO)
        for name in fleet_names():
            assert len(resolve_fleet(name)) >= 2

    def test_resolve_fleet_unknown(self):
        with pytest.raises(KeyError, match="duo-virgo"):
            resolve_fleet("nope")

    def test_policies_resolve(self):
        for name in ROUTER_POLICIES:
            assert resolve_router_policy(name, seed=1) is not None
        with pytest.raises(ValueError, match="round-robin"):
            resolve_router_policy("weighted", seed=0)


class TestFleetFaultPlan:
    def test_parse_fleet_wide_tokens(self):
        plan = FleetFaultPlan.parse(
            "crash:0.5:200000,slow:0.25:2.0:100000,partition:0.1:50000", 7)
        assert plan.seed == 7 and plan.active
        assert plan.crash_rate == 0.5 and plan.slow_scale == 2.0

    def test_parse_targeted_tokens(self):
        plan = FleetFaultPlan.parse(
            "crash@1:5000:20000,slow@0:0:3.0:10000,partition@2:100:500", 0)
        kinds = [(event.kind, event.replica) for event in plan.events]
        assert ("crash", 1) in kinds and ("slow", 0) in kinds
        assert ("partition", 2) in kinds

    @pytest.mark.parametrize("spec", [
        "crash:-0.1:100", "crash:2:100", "crash:nan:100",
        "slow:0.5:0.5:100",          # scale < 1 speeds replicas up
        "slow:0.5:inf:100",          # non-finite scale
        "crash:0.5:0",               # zero-duration fault
        "crash@0:-5:100",            # negative event time
        "reboot:0.5:100",            # unknown kind
        "crash:0.5",                 # missing field
        "",                          # empty spec
    ])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FleetFaultPlan.parse(spec, 0)

    def test_event_validation(self):
        with pytest.raises(ValueError, match="duration_scale"):
            ReplicaFaultEvent(kind="slow", replica=0, at_cycle=0,
                              duration_cycles=10, duration_scale=0.0)
        with pytest.raises(ValueError, match="slow"):
            ReplicaFaultEvent(kind="crash", replica=0, at_cycle=0,
                              duration_cycles=10, duration_scale=2.0)
        with pytest.raises(ValueError, match="replica"):
            ReplicaFaultEvent(kind="crash", replica=-1, at_cycle=0,
                              duration_cycles=10)

    def test_materialize_is_deterministic_and_range_checked(self):
        plan = FleetFaultPlan.parse("crash:0.8:50000,slow:0.5:2.0:40000", 3)
        first = plan.materialize(4, 1_000_000)
        again = plan.materialize(4, 1_000_000)
        assert first == again
        for event in first:
            assert 0 <= event.replica < 4
            assert 0 <= event.at_cycle < 1_000_000

    def test_materialize_rejects_out_of_range_target(self):
        plan = FleetFaultPlan.parse("crash@5:0:1000", 0)
        with pytest.raises(ValueError, match="replica 5"):
            plan.materialize(2, 1_000_000)


class TestFleetRun:
    def test_fault_free_duo_meets_everything(self):
        result = run_fleet(tiny_trace(), 2)
        assert [request.disposition for request in result.requests] == ["met"] * 3
        assert result.goodput == 1.0 and result.availability == 1.0
        assert result.failover_count == 0 and result.retry_count == 0
        assert sum(result.dispositions.values()) == 3
        assert sorted(result.dispositions) == sorted(FLEET_DISPOSITIONS)

    def test_requests_spread_across_replicas(self):
        result = run_fleet(tiny_trace(), 2, policy="round-robin")
        assert {request.replica for request in result.requests} == {0, 1}
        assert sum(replica.completed for replica in result.replicas) == 3

    def test_to_dict_is_canonical(self):
        result = run_fleet(tiny_trace(), 2)
        encoded = result.to_dict()
        assert encoded["kind"] == "fleet_run"
        assert len(encoded["requests"]) == 3
        assert len(encoded["replicas"]) == 2
        # Memo- and cache-dependent counters must not leak into the
        # canonical encoding.
        flattened = json.dumps(encoded)
        assert "memo" not in flattened and "epochs" not in flattened

    def test_every_policy_is_deterministic_under_chaos(self):
        spec = "crash:0.6:300000,slow:0.5:2.5:200000,partition:0.4:150000"
        for policy in ROUTER_POLICIES:
            first = run_fleet(tiny_trace(), 3, policy=policy, faults=spec,
                              fault_seed=11)
            again = run_fleet(tiny_trace(), 3, policy=policy, faults=spec,
                              fault_seed=11)
            a = json.dumps(first.to_dict(), sort_keys=True)
            b = json.dumps(again.to_dict(), sort_keys=True)
            assert a == b, f"policy {policy} is nondeterministic"
            assert sum(first.dispositions.values()) == 3

    def test_failover_beats_no_failover_goodput(self):
        # Crash replica 0 right after it admits work and keep it down past
        # the horizon: with failover the orphans re-prefill elsewhere and
        # finish; without it they are lost.
        trace = tiny_trace(arrivals=(0, 0, 0, 0), decode_steps=3)
        faults = "crash@0:1:5000000"
        with_failover = run_fleet(trace, 2, faults=faults)
        without = run_fleet(trace, 2, faults=faults,
                            config=RouterConfig(failover=False))
        assert with_failover.goodput > without.goodput
        assert with_failover.failover_count > 0
        assert dispositions_of(without)[
            min(r.request_id for r in without.requests if r.disposition == "failed")
        ] == "failed"
        # Failed-over requests pay the re-prefill toll explicitly.
        assert sum(r.reprefill_cycles for r in with_failover.requests) > 0

    def test_slowdown_stretches_makespan(self):
        baseline = run_fleet(tiny_trace(arrivals=(0,)), 1)
        slowed = run_fleet(tiny_trace(arrivals=(0,)), 1,
                           faults="slow@0:0:4.0:10000000")
        assert slowed.total_cycles > baseline.total_cycles
        assert slowed.replicas[0].slowdowns == 1
        # Slowdowns bypass the memo in both directions: a subsequent clean
        # run must still match the clean baseline byte for byte.
        clean = run_fleet(tiny_trace(arrivals=(0,)), 1)
        assert json.dumps(clean.to_dict()) == json.dumps(baseline.to_dict())

    def test_partition_retries_then_recovers(self):
        # Both replicas partitioned at arrival: dispatches fail, the request
        # backs off, and once the partition lifts it completes.
        trace = tiny_trace(arrivals=(0,), slo=resolve_slo("standard"))
        result = run_fleet(trace, 2,
                           faults="partition@0:0:40000,partition@1:0:40000")
        assert result.retry_count > 0 or result.failed_dispatches > 0
        assert result.requests[0].disposition in ("met", "violated")
        assert result.availability < 1.0

    def test_retry_budget_exhaustion_times_out(self):
        # A partition outlasting every backoff the budget allows: the
        # request must end "timed_out", not linger undispatched.
        trace = tiny_trace(arrivals=(0,), slo=resolve_slo("interactive"))
        config = RouterConfig(max_retries=1, retry_base_cycles=100,
                              retry_cap_cycles=200, dispatch_timeout=100)
        result = run_fleet(trace, 2, config=config,
                           faults="partition@0:0:9000000,partition@1:0:9000000")
        assert dispositions_of(result)["f0"] == "timed_out"
        assert result.requests[0].retries == 2  # budget + the exhausting try

    def test_priority_zero_sheds_on_total_outage(self):
        # No SLO class means priority 0: with every replica believed down
        # the router sheds instead of parking.
        trace = tiny_trace(arrivals=(60_000,))
        result = run_fleet(trace, 2,
                           faults="crash@0:0:9000000,crash@1:0:9000000")
        assert dispositions_of(result)["f0"] == "shed"
        assert result.goodput == 0.0

    def test_mixed_fleet(self):
        result = run_fleet(tiny_trace(), "mixed-pair")
        assert result.fleet == ("virgo", "volta")
        assert [request.disposition for request in result.requests] == ["met"] * 3

    def test_heterogeneous_fleet(self):
        # Dual-matrix-unit replicas (only the disaggregated virgo supports
        # the hetero configuration, so the fleet must be all-virgo).
        result = run_fleet(tiny_trace(), 2, heterogeneous=True)
        assert result.heterogeneous
        assert [request.disposition for request in result.requests] == ["met"] * 3

    def test_extrapolation_differential(self):
        # Epoch extrapolation is a pure compression: byte-identical output.
        trace = tiny_trace(arrivals=(0, 0), decode_steps=24)
        exact = run_fleet(trace, 2, epoch_extrapolation=False)
        compressed = run_fleet(trace, 2, epoch_extrapolation=True)
        assert json.dumps(exact.to_dict(), sort_keys=True) == \
            json.dumps(compressed.to_dict(), sort_keys=True)
        assert compressed.perf["epochs"]["extrapolated_iterations"] > 0

    def test_string_trace_and_string_faults(self):
        result = run_fleet("bursty-gpt", "duo-virgo",
                           faults="slow:1.0:1.5:100000", fault_seed=2)
        assert sum(result.dispositions.values()) == len(result.requests)

    def test_parked_request_times_out_at_queue_deadline(self):
        # Every replica down for the whole run: an SLO-carrying request
        # parks in the router queue, drain ticks find no capacity, and the
        # class's queue deadline converts it to "timed_out".
        trace = tiny_trace(arrivals=(0,), slo=resolve_slo("standard"))
        result = run_fleet(trace, 2,
                           faults="crash@0:0:99000000,crash@1:0:99000000")
        assert dispositions_of(result)["f0"] == "timed_out"
        assert result.requests[0].replica is None

    def test_recorder_captures_router_and_epoch_spans(self):
        from repro.obs import TraceRecorder, tracing
        recorder = TraceRecorder(label="fleet-test")
        trace = tiny_trace(arrivals=(0, 0), decode_steps=24,
                           slo=resolve_slo("standard"))
        with tracing(recorder):
            run_fleet(trace, 2,
                      faults="partition@0:0:30000,partition@1:0:30000,"
                             "crash@0:200000:9000000")
        categories = {span.category for span in recorder.spans}
        assert "fault" in categories        # dispatch timeouts
        assert "epoch" in categories        # extrapolated iteration spans
        # Terminal router decisions (here: a shed under total outage) land
        # on the router's dispositions track.
        shed_recorder = TraceRecorder(label="fleet-shed")
        with tracing(shed_recorder):
            run_fleet(tiny_trace(arrivals=(60_000,)), 2,
                      faults="crash@0:0:9000000,crash@1:0:9000000")
        assert "disposition" in {span.category for span in shed_recorder.spans}

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="router policy"):
            run_fleet(tiny_trace(), 2, policy="banana")

    def test_metrics_snapshot_counts_fleet_activity(self):
        result = run_fleet(tiny_trace(), 2)
        snapshot = result.metrics.snapshot()
        assert snapshot["fleet.requests"] == 3
        assert snapshot["fleet.dispositions.met"] == 3
        assert snapshot["fleet.goodput"] == 1.0


class TestFleetAnalysis:
    def test_report_shape(self):
        result = run_fleet(tiny_trace(), 2)
        report = fleet_report(result)
        assert report["kind"] == "fleet_latency"
        assert report["finished"] == 3
        assert report["latency_cycles"]["p50"] > 0
        assert set(report["replica_occupancy"]) == {"replica0", "replica1"}

    def test_request_rows_cover_every_request(self):
        result = run_fleet(tiny_trace(), 2)
        rows = fleet_request_rows(result)
        assert len(rows) == 3 and all(len(row) == 9 for row in rows)

    def test_all_shed_report_is_well_defined(self):
        # Satellite 1's fleet face: a total outage must produce a formatted
        # report with zero placeholders and a plain-language note, not a
        # divide-by-zero.
        trace = tiny_trace(arrivals=(60_000, 61_000))
        result = run_fleet(trace, 2,
                           faults="crash@0:0:9000000,crash@1:0:9000000")
        report = fleet_report(result)
        assert report["finished"] == 0
        assert report["latency_cycles"]["p99"] == 0.0
        text = format_fleet_report(result)
        assert "no request finished" in text
        assert "goodput 0.000" in text

    def test_format_mentions_chaos_and_failover(self):
        result = run_fleet(tiny_trace(arrivals=(0, 0, 0), decode_steps=3), 2,
                           faults="crash@0:1:5000000")
        text = format_fleet_report(result)
        assert "crash" in text and "failovers" in text

    def test_perf_stats_are_diagnostic_only(self):
        result = run_fleet(tiny_trace(), 2)
        stats = fleet_perf_stats(result)
        assert set(stats) == {"iteration_memo", "timing_cache", "epochs"}


class TestFleetBatch:
    def test_job_key_ignores_spelling(self):
        by_name = FleetJob(trace=tiny_trace(), fleet="duo-virgo")
        by_list = FleetJob(trace=tiny_trace(), fleet=("virgo", "virgo"))
        assert by_name.key() == by_list.key()

    def test_job_key_tracks_fault_plan_and_seed(self):
        base = FleetJob(trace=tiny_trace())
        chaotic = FleetJob(trace=tiny_trace(), faults="crash:0.5:100000")
        reseeded = FleetJob(trace=tiny_trace(), faults="crash:0.5:100000",
                            fault_seed=1)
        assert len({base.key(), chaotic.key(), reseeded.key()}) == 3

    def test_sweep_crosses_and_rejects_duplicates(self):
        jobs = fleet_sweep_jobs(
            traces=(tiny_trace(),), fleets=("duo-virgo",),
            policies=("round-robin", "least-kv"),
            fault_plans=(None, "crash:0.9:100000"), failover=(True, False),
        )
        assert len(jobs) == 8
        with pytest.raises(ValueError, match="duplicate"):
            fleet_sweep_jobs(traces=(tiny_trace(),), fleets=("duo-virgo",),
                             policies=("round-robin", "round-robin"))

    def test_sweep_rejects_invalid_cells_at_build_time(self):
        with pytest.raises(ValueError, match="invalid fleet sweep cell"):
            fleet_sweep_jobs(traces=(tiny_trace(),),
                             fault_plans=("crash:5:100",))
        with pytest.raises(ValueError, match="invalid fleet sweep cell"):
            fleet_sweep_jobs(traces=(tiny_trace(),), fleets=("no-such-zoo",))

    def test_run_batch_caches_fleet_results(self, tmp_path):
        jobs = fleet_sweep_jobs(traces=(tiny_trace(),), fleets=(2,),
                                policies=("round-robin",),
                                fault_plans=("crash@0:1:5000000",),
                                failover=(True, False))
        cold = run_batch(jobs, cache_dir=tmp_path, max_workers=1)
        warm = run_batch(jobs, cache_dir=tmp_path, max_workers=1)
        assert cold.computed == 2 and warm.cached == 2
        assert cold.results() == warm.results()
        goodput = {out.job.label: out.result["goodput"] for out in cold.outcomes}
        with_failover, = [v for k, v in goodput.items() if "nofailover" not in k]
        without, = [v for k, v in goodput.items() if "nofailover" in k]
        assert with_failover > without


class TestFleetCli:
    def test_list(self, capsys):
        main(["fleet", "--list"])
        out = capsys.readouterr().out
        assert "duo-virgo" in out and "round-robin" in out and "bursty-gpt" in out

    def test_json_run_parses_and_is_deterministic(self, capsys):
        argv = ["fleet", "--trace", "bursty-gpt", "--fleet", "2", "--json",
                "--inject", "crash:0.9:300000", "--fault-seed", "5"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        again = capsys.readouterr().out
        # The "perf" block is process-local diagnostics (the second run hits
        # the now-warm iteration memo); everything canonical is identical.
        # The CI chaos gate cmp's two *fresh* processes, where the whole
        # document matches byte for byte.
        report, replay = json.loads(first), json.loads(again)
        report.pop("perf"), replay.pop("perf")
        assert report == replay
        assert report["kind"] == "fleet_run"
        assert report["latency_report"]["kind"] == "fleet_latency"
        assert sum(report["dispositions"].values()) == len(report["requests"])

    def test_table_and_latency_report(self, capsys):
        main(["fleet", "--trace", "bursty-gpt", "--latency-report"])
        out = capsys.readouterr().out
        assert "disposition" in out and "goodput" in out and "replica0" in out

    def test_compact_summary_without_latency_report(self, capsys):
        main(["fleet", "--trace", "bursty-gpt"])
        out = capsys.readouterr().out
        assert "goodput" in out and "makespan" in out

    def test_bad_inject_exits_one(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--trace", "bursty-gpt", "--inject", "crash:-1:5"])
        assert "crash_rate" in str(excinfo.value)

    def test_unknown_fleet_exits_one(self):
        with pytest.raises(SystemExit, match="duo-virgo"):
            main(["fleet", "--trace", "bursty-gpt", "--fleet", "warehouse"])

    def test_unknown_policy_exits_one(self):
        with pytest.raises(SystemExit, match="router policy"):
            main(["fleet", "--trace", "bursty-gpt", "--policy", "lifo"])

    def test_trace_out_is_valid_and_has_replica_tracks(self, tmp_path, capsys):
        trace_file = tmp_path / "fleet.json"
        main(["fleet", "--trace", "bursty-gpt", "--trace-out", str(trace_file),
              "--inject", "crash@0:100000:600000", "--metrics"])
        capsys.readouterr()
        main(["trace-report", "--input", str(trace_file), "--validate"])
        out = capsys.readouterr().out
        assert "valid trace-event JSON" in out
        payload = json.loads(trace_file.read_text())
        names = {event.get("args", {}).get("name")
                 for event in payload["traceEvents"]
                 if event.get("name") == "process_name"}
        assert any(name and name.startswith("replica0") for name in names)
        assert any(name and name.startswith("replica1") for name in names)
