"""Shared fixtures for the test suite."""

from __future__ import annotations

import difflib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.config.presets import (
    DesignKind,
    ampere_style,
    hopper_style,
    make_design,
    virgo,
    volta_style,
)
from repro.config.soc import DataType


@pytest.fixture
def volta_design():
    return volta_style()


@pytest.fixture
def ampere_design():
    return ampere_style()


@pytest.fixture
def hopper_design():
    return hopper_style()


@pytest.fixture
def virgo_design():
    return virgo()


@pytest.fixture
def virgo_fp32_design():
    return virgo(DataType.FP32)


@pytest.fixture
def all_design_configs():
    return {kind: make_design(kind) for kind in DesignKind}


@pytest.fixture
def rng():
    return np.random.default_rng(seed=20250330)


# --------------------------------------------------------------------------- #
# Golden-file regression harness
# --------------------------------------------------------------------------- #

GOLDEN_DIR = Path(__file__).parent / "goldens"


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current outputs instead "
        "of comparing against them",
    )


def canonical_json(data) -> str:
    """The byte encoding every golden file stores: sorted keys, 2-space
    indent, trailing newline.  Serialization is pure (no timestamps, no
    environment), so regeneration on an unchanged tree is byte-identical."""
    return json.dumps(data, indent=2, sort_keys=True) + "\n"


@pytest.fixture
def golden(request):
    """Compare ``data`` against ``tests/goldens/<name>.json`` byte for byte.

    With ``--update-goldens`` the file is (re)written instead; committing the
    diff is the explicit, review-visible act of accepting a serialization
    change -- which is exactly where cache-schema drift should be caught.
    """
    update = request.config.getoption("--update-goldens")

    def check(name: str, data) -> None:
        path = GOLDEN_DIR / f"{name}.json"
        encoded = canonical_json(data)
        if update:
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
            path.write_text(encoded, encoding="utf-8")
            return
        if not path.exists():
            pytest.fail(
                f"missing golden file {path.name}; run pytest with "
                f"--update-goldens to create it"
            )
        expected = path.read_text(encoding="utf-8")
        if encoded != expected:
            diff = "".join(
                difflib.unified_diff(
                    expected.splitlines(keepends=True),
                    encoded.splitlines(keepends=True),
                    fromfile=f"goldens/{path.name}",
                    tofile="current output",
                )
            )
            pytest.fail(
                f"golden mismatch for {path.name} -- serialization or timing "
                f"output drifted; if intended, re-run with --update-goldens "
                f"and commit the diff:\n{diff}"
            )

    return check
