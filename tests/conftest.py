"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.presets import (
    DesignKind,
    ampere_style,
    hopper_style,
    make_design,
    virgo,
    volta_style,
)
from repro.config.soc import DataType


@pytest.fixture
def volta_design():
    return volta_style()


@pytest.fixture
def ampere_design():
    return ampere_style()


@pytest.fixture
def hopper_design():
    return hopper_style()


@pytest.fixture
def virgo_design():
    return virgo()


@pytest.fixture
def virgo_fp32_design():
    return virgo(DataType.FP32)


@pytest.fixture
def all_design_configs():
    return {kind: make_design(kind) for kind in DesignKind}


@pytest.fixture
def rng():
    return np.random.default_rng(seed=20250330)
